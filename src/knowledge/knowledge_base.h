// KnowledgeBase — the per-site-sharded crowd knowledge cache.
//
// Holds one SiteKnowledge lattice value per host, sharded by host hash so
// concurrent sessions consulting / publishing different sites never contend
// on one lock. All mutation goes through joins (mergeSite / mergeFrom) plus
// the one epoch-guarded inflation (demote), so replicas of this cache can be
// gossiped between fleets in any order and converge (see site_knowledge.h).
//
// Thread safety: every method is safe to call concurrently; lookup returns
// a copy taken under the shard lock, so a caller never observes a
// half-merged entry (the epoch-guard race the TSan suite drives).
//
// Persistence is a hook, not a dependency: KnowledgeStore (knowledge_store.h)
// installs a callback that appends each updated site line through the
// durable store's WAL machinery; a base without a hook is purely in-memory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "cookies/record.h"
#include "knowledge/site_knowledge.h"

namespace cookiepicker::knowledge {

class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  // Copy of the site's entry, or nullopt if the crowd has never seen it.
  std::optional<SiteKnowledge> lookup(const std::string& host) const;

  // Joins `delta` into the site's entry (creating it at the lattice bottom
  // first). Counts one KnowledgeMerges against the caller's registry.
  void mergeSite(const std::string& host, const SiteKnowledge& delta);

  // Joins every site of `other` into this base — one gossip delivery.
  // Copies `other`'s entries out under its shard locks first, so two bases
  // may gossip at each other concurrently without lock-order inversion.
  void mergeFrom(const KnowledgeBase& other);

  // Epoch-guarded re-probation: the site's observed cookie set no longer
  // matches the shared entry, so open a new epoch containing exactly the
  // observed keys (unmarked, unstable, counters zeroed). The bumped epoch
  // makes this dominate every stale-epoch contribution still in flight.
  // Returns the new epoch.
  std::uint64_t demote(const std::string& host,
                       const std::set<cookies::CookieKey>& observed);

  std::size_t siteCount() const;
  // Sites whose current epoch has a stable (servable) verdict.
  std::size_t warmSiteCount() const;

  // Canonical text form: every site's serializeLine, sorted by host, one
  // per line. Equal bases produce identical bytes — the byte-compare anchor
  // for the partition-order / gossip-schedule property tests.
  std::string serialize() const;
  // Joins serialized lines into this base (it need not be empty — loading
  // IS merging). Malformed lines are skipped; returns lines applied.
  std::size_t deserialize(std::string_view text);

  // Durability hook, called under the shard lock with the post-update entry
  // after every mergeSite / demote / deserialize application. Replaced
  // wholesale; pass nullptr-equivalent (default-constructed) to detach.
  using PersistHook =
      std::function<void(const std::string& host, const SiteKnowledge& entry)>;
  void setPersistHook(PersistHook hook);

 private:
  static constexpr std::size_t kShardCount = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, SiteKnowledge> sites;
  };
  Shard& shardFor(const std::string& host);
  const Shard& shardFor(const std::string& host) const;
  // Joins under the shard lock and fires the persist hook. Returns a copy
  // of the merged entry.
  SiteKnowledge mergeSiteLocked(const std::string& host,
                                const SiteKnowledge& delta);

  std::array<Shard, kShardCount> shards_;
  // Guards hook_ itself (hooks are installed once, fired often; firing
  // copies the function under this lock, then calls outside no lock but
  // inside the shard lock).
  mutable std::mutex hookMutex_;
  PersistHook hook_;
};

}  // namespace cookiepicker::knowledge
