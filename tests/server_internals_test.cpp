// Unit tests for the synthetic-web building blocks: word generation, DOM
// fragments, render-context plumbing, lifetime distribution, and behavior
// ordering inside WebSite.
#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "dom/select.h"
#include "dom/serialize.h"
#include "html/parser.h"
#include "server/fragments.h"
#include "server/generator.h"
#include "server/site.h"
#include "server/words.h"
#include "util/strings.h"

namespace cookiepicker::server {
namespace {

// --- words -----------------------------------------------------------------

TEST(Words, Deterministic) {
  util::Pcg32 a(5, 1);
  util::Pcg32 b(5, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(randomWord(a), randomWord(b));
  }
}

TEST(Words, PhraseHasRequestedWordCount) {
  util::Pcg32 rng(5, 1);
  const std::string phrase = randomPhrase(rng, 4);
  EXPECT_EQ(util::splitWhitespace(phrase).size(), 4u);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(phrase[0])));
}

TEST(Words, SentenceEndsWithPeriod) {
  util::Pcg32 rng(5, 1);
  const std::string sentence = randomPhrase(rng, 3, /*sentence=*/true);
  EXPECT_EQ(sentence.back(), '.');
}

TEST(Words, ParagraphHasSentences) {
  util::Pcg32 rng(5, 1);
  const std::string paragraph = randomParagraph(rng, 3);
  int periods = 0;
  for (const char ch : paragraph) {
    if (ch == '.') ++periods;
  }
  EXPECT_EQ(periods, 3);
}

TEST(Words, TitleIsTitleCase) {
  util::Pcg32 rng(9, 1);
  const std::string title = randomTitle(rng);
  for (const std::string& word : util::splitWhitespace(title)) {
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(word[0]))) << title;
  }
}

TEST(Words, AdCopyLooksLikeAdCopy) {
  util::Pcg32 rng(11, 1);
  const std::string copy = randomAdCopy(rng);
  EXPECT_NE(copy.find("SAVE "), std::string::npos);
  EXPECT_NE(copy.find('%'), std::string::npos);
}

// --- fragments --------------------------------------------------------------

TEST(Fragments, ContentSectionShape) {
  util::Pcg32 rng(3, 1);
  auto section = makeContentSection(rng, /*paragraphs=*/2, /*adSlots=*/2,
                                    /*rotatingHeadline=*/true);
  EXPECT_EQ(section->name(), "section");
  EXPECT_EQ(dom::select(*section, "h2").size(), 1u);
  EXPECT_EQ(dom::select(*section, "h3.rotating-headline").size(), 1u);
  EXPECT_EQ(dom::select(*section, "p").size(), 2u);
  EXPECT_EQ(dom::select(*section, "div.inner > div.adslot").size(), 2u);
  // Ad slots start empty (noise behaviors fill them per fetch).
  for (const dom::Node* slot : dom::select(*section, ".adslot")) {
    EXPECT_EQ(slot->childCount(), 0u);
  }
}

TEST(Fragments, AdSlotDepthIsBelowDefaultLevelCut) {
  // The slot must sit deeper than RSTM's l=5 window when mounted at the
  // standard body>div#page>main chain (design decision 1).
  util::Pcg32 rng(3, 1);
  auto section = makeContentSection(rng, 1, 1, false);
  // Depth of adslot inside the section subtree:
  const dom::Node* slot = dom::selectFirst(*section, ".adslot");
  ASSERT_NE(slot, nullptr);
  int depth = 0;
  for (const dom::Node* node = slot; node != section.get();
       node = node->parent()) {
    ++depth;
  }
  // section(+3 from body) + depth >= 6 → below the l=5 cut.
  EXPECT_GE(depth + 3, 6);
}

TEST(Fragments, SidebarAndResultListShapes) {
  util::Pcg32 rng(4, 1);
  auto sidebar = makeSidebar(rng, "Topics", 5);
  EXPECT_EQ(dom::select(*sidebar, "ul > li").size(), 5u);
  EXPECT_NE(sidebar->textContent().find("Topics"), std::string::npos);

  auto results = makeResultList(rng, 7);
  EXPECT_EQ(dom::select(*results, "ol > li").size(), 7u);
}

TEST(Fragments, SignUpFormHasFields) {
  util::Pcg32 rng(6, 1);
  auto form = makeSignUpForm(rng);
  EXPECT_EQ(dom::select(*form, "input[name=username]").size(), 1u);
  EXPECT_EQ(dom::select(*form, "input[type=password]").size(), 1u);
  EXPECT_EQ(dom::select(*form, "input[type=submit]").size(), 1u);
  EXPECT_NE(form->textContent().find("Create your account"),
            std::string::npos);
}

TEST(Fragments, PromoVariantsStructurallyDistinct) {
  util::Pcg32 rng(8, 1);
  auto variant0 = makePromoBlock(rng, 0);
  auto variant1 = makePromoBlock(rng, 1);
  auto variant2 = makePromoBlock(rng, 2);
  EXPECT_NE(dom::structureSignature(*variant0),
            dom::structureSignature(*variant1));
  EXPECT_NE(dom::structureSignature(*variant1),
            dom::structureSignature(*variant2));
  // None of them carries an ad-filter-triggering class.
  for (const auto* promo : {variant0.get(), variant1.get(), variant2.get()}) {
    EXPECT_EQ(promo->attribute("class").value_or("").find("promo"),
              std::string::npos);
  }
}

// --- lifetimes ----------------------------------------------------------------

TEST(TrackerLifetimes, DeterministicPerSeedAndIndex) {
  EXPECT_EQ(trackerLifetimeSeconds(5, 0), trackerLifetimeSeconds(5, 0));
  // Different indices usually differ (bucketed distribution).
  std::set<std::int64_t> values;
  for (int i = 0; i < 14; ++i) values.insert(trackerLifetimeSeconds(5, i));
  EXPECT_GT(values.size(), 3u);
}

TEST(TrackerLifetimes, MajorityLiveAYearOrMore) {
  int total = 0;
  int yearPlus = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    for (int index = 0; index < 5; ++index) {
      ++total;
      if (trackerLifetimeSeconds(seed, index) >= 365LL * 86400) ++yearPlus;
    }
  }
  EXPECT_GT(static_cast<double>(yearPlus) / total, 0.6);
}

// --- WebSite internals -----------------------------------------------------------

TEST(WebSiteInternals, BehaviorsRunInRegistrationOrder) {
  util::SimClock clock;
  SiteConfig config;
  config.domain = "order.example";
  config.title = "Order";
  config.category = "games";
  config.seed = 12;
  WebSite site(config, clock);

  struct Stamper : SiteBehavior {
    explicit Stamper(std::string tag) : tag_(std::move(tag)) {}
    void render(const RenderContext&, dom::Node& body) override {
      auto marker = dom::Node::makeElement("span");
      marker->setAttribute("class", "stamp-" + tag_);
      body.appendChild(std::move(marker));
    }
    std::string tag_;
  };
  site.addBehavior(std::make_unique<Stamper>("first"));
  site.addBehavior(std::make_unique<Stamper>("second"));

  net::HttpRequest request;
  request.url = *net::Url::parse("http://order.example/");
  auto document = html::parseHtml(site.handle(request).body);
  const dom::Node* body = document->findFirst("body");
  ASSERT_NE(body, nullptr);
  ASSERT_GE(body->childCount(), 2u);
  EXPECT_EQ(body->child(body->childCount() - 2)
                .attribute("class")
                .value_or(""),
            "stamp-first");
  EXPECT_EQ(body->child(body->childCount() - 1)
                .attribute("class")
                .value_or(""),
            "stamp-second");
}

TEST(WebSiteInternals, FetchCounterAdvances) {
  util::SimClock clock;
  SiteConfig config;
  config.domain = "count.example";
  config.title = "Count";
  config.category = "games";
  config.seed = 13;
  WebSite site(config, clock);
  net::HttpRequest request;
  request.url = *net::Url::parse("http://count.example/");
  site.handle(request);
  site.handle(request);
  EXPECT_EQ(site.fetchCount(), 2u);
}

TEST(WebSiteInternals, PixelImagesMatchConfiguredTrackerCount) {
  util::SimClock clock;
  SiteConfig config;
  config.domain = "px.example";
  config.title = "Px";
  config.category = "news";
  config.seed = 14;
  config.pixelTrackers = 3;
  WebSite site(config, clock);
  net::HttpRequest request;
  request.url = *net::Url::parse("http://px.example/");
  auto document = html::parseHtml(site.handle(request).body);
  EXPECT_EQ(dom::select(*document, "img[width=1]").size(), 3u);
}

TEST(WebSiteInternals, HeadHasStylesheetAndScript) {
  util::SimClock clock;
  SiteConfig config;
  config.domain = "head.example";
  config.title = "Head";
  config.category = "arts";
  config.seed = 15;
  WebSite site(config, clock);
  net::HttpRequest request;
  request.url = *net::Url::parse("http://head.example/");
  auto document = html::parseHtml(site.handle(request).body);
  EXPECT_EQ(dom::select(*document, "head > link[rel=stylesheet]").size(),
            1u);
  EXPECT_EQ(dom::select(*document, "head > script[src]").size(), 1u);
  EXPECT_NE(document->findFirst("title"), nullptr);
}

}  // namespace
}  // namespace cookiepicker::server
