#include "faults/fault_engine.h"

namespace cookiepicker::faults {

const FaultRule* HostFaultState::evaluate(const FaultPlan& plan,
                                          std::uint64_t generation,
                                          std::string_view host, Scope kind,
                                          bool firstAttempt,
                                          util::Pcg32& rng) {
  if (generation_ != generation) {
    generation_ = generation;
    logicalIndex_.fill(0);
    flapCursor_.assign(plan.rules.size(), 0);
  }

  // The logical index of this request, per scope: first attempts claim the
  // next index; retries reuse the index their first attempt claimed.
  const auto scopeSlot = [](Scope scope) {
    return static_cast<std::size_t>(scope);
  };
  std::array<std::uint64_t, kScopeCount> index{};
  for (const std::size_t slot : {scopeSlot(Scope::Any), scopeSlot(kind)}) {
    std::uint64_t& counter = logicalIndex_[slot];
    if (firstAttempt) {
      index[slot] = counter++;
    } else {
      index[slot] = counter == 0 ? 0 : counter - 1;
    }
  }

  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    const FaultRule& rule = plan.rules[i];
    if (rule.host != "*" && rule.host != host) continue;
    if (rule.scope != Scope::Any && rule.scope != kind) continue;
    const std::uint64_t logical = index[scopeSlot(rule.scope)];
    if (logical < rule.firstIndex || logical > rule.lastIndex) continue;
    // The rule matched this physical attempt: its flap cursor advances
    // whether or not it ends up firing, so fail/recover phases tick per
    // attempt and a retry can land in the recovered phase.
    const std::uint64_t position = flapCursor_[i]++;
    if (rule.failCount > 0) {
      const std::uint64_t period = rule.failCount + rule.recoverCount;
      if (position % period >= rule.failCount) continue;  // recovered phase
    }
    // Deterministic rules (p == 1) consume no draws, so adding or removing
    // them never shifts the host's latency stream.
    if (rule.probability < 1.0 && !rng.chance(rule.probability)) continue;
    return &rule;
  }
  return nullptr;
}

std::string corruptHeaderValue(std::string_view value, util::Pcg32& rng) {
  std::string out(value);
  if (out.empty()) {
    out = "\x01";
    return out;
  }
  const std::uint32_t mutations =
      1 + rng.uniform(0, static_cast<std::uint32_t>(out.size() > 4 ? 3 : 1));
  for (std::uint32_t m = 0; m < mutations; ++m) {
    const std::uint32_t pos =
        rng.uniform(0, static_cast<std::uint32_t>(out.size() - 1));
    // Arbitrary printable byte — may corrupt the name, the value, an '='
    // or a ';', so downstream parsers see every flavour of garbage.
    out[pos] = static_cast<char>(rng.uniform(33, 126));
  }
  return out;
}

}  // namespace cookiepicker::faults
