// Lenient HTML tree construction.
//
// Converts the token stream into a dom::Node tree, tolerating the malformed
// markup that is ubiquitous on the web: missing <html>/<head>/<body>,
// unclosed <p>/<li>/<td>, mis-nested end tags, void elements written with or
// without '/'. Section 3.2 of the paper requires that both the regular and
// the hidden copies of a page go through the *same* parser so malformed
// pages are normalized identically — this parser is that shared component.
#pragma once

#include <memory>
#include <string_view>

#include "dom/node.h"

namespace cookiepicker::html {

struct ParseOptions {
  // When true (default), whitespace-only text nodes between structural
  // elements are dropped, as layout engines effectively do outside
  // whitespace-preserving contexts. Keeps DOM trees free of noise leaves.
  bool dropInterElementWhitespace = true;
};

// Parses HTML text into a document tree. Never throws on malformed input —
// every byte sequence produces *some* tree, deterministically.
std::unique_ptr<dom::Node> parseHtml(std::string_view input,
                                     const ParseOptions& options = {});

// True for elements that cannot have children (<br>, <img>, ...).
bool isVoidElement(std::string_view tagName);

// Elements whose start tag belongs in <head> when seen before <body>.
// Shared with the streaming snapshot builder so both placement rules can
// only diverge if this one function changes.
bool isHeadContentTag(std::string_view tagName);

// Block-level elements; an open <p> is implicitly closed when one arrives.
bool isBlockLevelTag(std::string_view tagName);

}  // namespace cookiepicker::html
