#include "dom/serialize.h"

namespace cookiepicker::dom {

namespace {

// Void elements are serialized without end tags.
bool isVoidTag(const std::string& tag) {
  return tag == "area" || tag == "base" || tag == "br" || tag == "col" ||
         tag == "embed" || tag == "hr" || tag == "img" || tag == "input" ||
         tag == "link" || tag == "meta" || tag == "param" ||
         tag == "source" || tag == "track" || tag == "wbr";
}

std::string escapeText(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '&':
        escaped += "&amp;";
        break;
      case '<':
        escaped += "&lt;";
        break;
      case '>':
        escaped += "&gt;";
        break;
      default:
        escaped.push_back(ch);
    }
  }
  return escaped;
}

std::string escapeAttributeValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char ch : value) {
    switch (ch) {
      case '&':
        escaped += "&amp;";
        break;
      case '"':
        escaped += "&quot;";
        break;
      case '<':
        escaped += "&lt;";
        break;
      default:
        escaped.push_back(ch);
    }
  }
  return escaped;
}

// One serializer for both the plain and the provenance-recording paths:
// byte-identity between them is structural, not a property to test for.
// When `map` is non-null, the output byte range of every subtree whose root
// carries taint labels is recorded; untainted nodes cost one null check.
void serializeNode(const Node& node, std::string& output,
                   provenance::ProvenanceMap* map) {
  const std::size_t start = output.size();
  switch (node.type()) {
    case NodeType::Document:
      for (const auto& child : node.children()) {
        serializeNode(*child, output, map);
      }
      break;
    case NodeType::Doctype:
      output += "<!DOCTYPE " + node.name() + ">";
      break;
    case NodeType::Comment:
      output += "<!--" + node.value() + "-->";
      break;
    case NodeType::Text:
      // Raw-text element content must not be entity-escaped.
      if (node.parent() != nullptr &&
          (node.parent()->name() == "script" ||
           node.parent()->name() == "style")) {
        output += node.value();
      } else {
        output += escapeText(node.value());
      }
      break;
    case NodeType::Element: {
      output += "<" + node.name();
      for (const Attribute& attribute : node.attributes()) {
        output += " " + attribute.name + "=\"" +
                  escapeAttributeValue(attribute.value) + "\"";
      }
      output += ">";
      if (isVoidTag(node.name())) break;
      for (const auto& child : node.children()) {
        serializeNode(*child, output, map);
      }
      output += "</" + node.name() + ">";
      break;
    }
  }
  if (map != nullptr && node.taintLabels() != 0) {
    map->add(static_cast<std::uint32_t>(start),
             static_cast<std::uint32_t>(output.size()), node.taintLabels());
  }
}

void debugNode(const Node& node, std::size_t depth, std::string& output) {
  output.append(depth * 2, ' ');
  switch (node.type()) {
    case NodeType::Document:
      output += "#document";
      break;
    case NodeType::Doctype:
      output += "doctype " + node.name();
      break;
    case NodeType::Comment:
      output += "comment '" + node.value() + "'";
      break;
    case NodeType::Text:
      output += "text '" + node.value() + "'";
      break;
    case NodeType::Element: {
      output += "element " + node.name();
      for (const Attribute& attribute : node.attributes()) {
        output += " " + attribute.name + "=\"" + attribute.value + "\"";
      }
      break;
    }
  }
  output += "\n";
  for (const auto& child : node.children()) {
    debugNode(*child, depth + 1, output);
  }
}

void signatureNode(const Node& node, std::string& output) {
  if (node.isDocument()) {
    bool first = true;
    for (const auto& child : node.children()) {
      if (!child->isElement()) continue;
      if (!first) output += ",";
      signatureNode(*child, output);
      first = false;
    }
    return;
  }
  if (!node.isElement()) return;
  output += node.name();
  std::string childSignatures;
  bool first = true;
  for (const auto& child : node.children()) {
    if (!child->isElement()) continue;
    if (!first) childSignatures += ",";
    signatureNode(*child, childSignatures);
    first = false;
  }
  if (!childSignatures.empty()) {
    output += "(" + childSignatures + ")";
  }
}

}  // namespace

std::string toHtml(const Node& root) {
  std::string output;
  serializeNode(root, output, nullptr);
  return output;
}

std::string toHtmlWithProvenance(const Node& root,
                                 provenance::ProvenanceMap& map) {
  std::string output;
  serializeNode(root, output, &map);
  map.normalize();
  return output;
}

std::string toDebugString(const Node& root) {
  std::string output;
  debugNode(root, 0, output);
  return output;
}

std::string structureSignature(const Node& root) {
  std::string output;
  signatureNode(root, output);
  return output;
}

}  // namespace cookiepicker::dom
