file(REMOVE_RECURSE
  "CMakeFiles/evasion_test.dir/evasion_test.cpp.o"
  "CMakeFiles/evasion_test.dir/evasion_test.cpp.o.d"
  "evasion_test"
  "evasion_test.pdb"
  "evasion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
