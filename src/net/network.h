// In-process simulated network.
//
// Replaces the live internet of the paper's evaluation: servers register by
// host name, requests are dispatched synchronously, and a per-server latency
// model reports how long each exchange *would* have taken. Callers (the
// browser) advance the simulated clock by that amount, so timing results are
// deterministic functions of the RNG seed.
//
// Thread safety: `dispatch` may be called concurrently from many browser
// sessions (the fleet layer). The host registry is guarded by a shared
// mutex (register before spawning workers for best throughput), each host's
// handler + latency RNG is serialized by a per-host mutex, and the traffic
// counters are atomic. Latency randomness is drawn from *per-host* RNG
// streams forked from the network seed and keyed by host name, so the
// latency sequence a host serves depends only on the requests sent to that
// host — never on how requests to different hosts interleave. That is the
// invariant that keeps fleet results byte-identical across worker counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "faults/fault_engine.h"
#include "faults/fault_plan.h"
#include "net/http.h"
#include "net/transport.h"
#include "util/rng.h"

namespace cookiepicker::net {

// How long a request/response exchange takes, modeled as
//   rtt + perKilobyte * (bytes/1024) + lognormal jitter,
// optionally with a heavy "stall" tail (the paper's S4/S17/S28 sites showed
// ~10 s identification durations caused by very slow responses).
struct LatencyProfile {
  double baseRttMs = 80.0;
  double perKilobyteMs = 8.0;
  double jitterMu = 4.0;       // lognormal location (exp(4) ≈ 55 ms median)
  double jitterSigma = 0.6;
  double stallProbability = 0.0;  // chance of an extra multi-second stall
  double stallMs = 8000.0;

  static LatencyProfile fast();
  static LatencyProfile typical();
  static LatencyProfile slow();  // the S4/S17/S28-style profile

  double sampleMs(util::Pcg32& rng, std::size_t responseBytes) const;
};

class Network : public Transport {
 public:
  explicit Network(std::uint64_t seed = 7) : seed_(seed) {}

  // Registers a handler for a host (exact match, lowercase).
  void registerHost(const std::string& host,
                    std::shared_ptr<HttpHandler> handler,
                    LatencyProfile profile = LatencyProfile::typical());
  bool knowsHost(const std::string& host) const;

  // Dispatches a request to the host's handler. Unknown hosts get a
  // synthetic 404 with fast latency (a resolver failure would be faster
  // still; indistinguishable for our purposes). Safe to call concurrently;
  // requests to the same host serialize on that host's lock.
  Exchange dispatch(const HttpRequest& request) override;

  // Fault injection: installs a schedule of faults evaluated per request to
  // *known* hosts (unknown hosts already fail with their synthetic 404).
  // Every probabilistic gate draws from the host's forked RNG stream, so a
  // faulty run is as reproducible as a clean one. nullptr (or an empty
  // plan) disables injection. Installing a plan resets the per-host
  // schedule cursors; safe to call between or during runs.
  void setFaultPlan(std::shared_ptr<const faults::FaultPlan> plan);
  std::shared_ptr<const faults::FaultPlan> faultPlan() const;

  // Legacy knob, kept as sugar: compiles to a one-rule plan that 503s any
  // request with the given probability (<= 0 clears the plan).
  void setFailureProbability(double probability);

  std::uint64_t injectedFailures() const {
    return injectedFailures_.load(std::memory_order_relaxed);
  }

  // Wall-latency emulation: when scale > 0, dispatch() additionally sleeps
  // for latencyMs * scale of *host* time, turning the simulated wait into a
  // real one. Results are unaffected (the simulated clock still advances by
  // the full latency); only wall time changes. The fleet scaling benchmark
  // uses this to reproduce the network-bound regime of a real crawl, where
  // extra workers win by overlapping waits.
  void setWallLatencyScale(double scale) {
    wallLatencyScale_.store(scale, std::memory_order_relaxed);
  }
  double wallLatencyScale() const {
    return wallLatencyScale_.load(std::memory_order_relaxed);
  }

  // --- accounting (reset per experiment as needed) ---
  //
  // Ordering contract: the three traffic counters are independent relaxed
  // atomics. Each individual read/reset is race-free (TSan-clean), but the
  // *set* is not updated atomically with respect to a dispatch in flight: a
  // reader racing a dispatch may see the request counted and its bytes not
  // yet added (dispatch bumps requests first), and a resetCounters() racing
  // a dispatch may zero one counter before the other is bumped, leaving
  // e.g. bytes > 0 with requests == 0. Callers that need a coherent
  // cross-counter view (the overhead benchmarks, per-experiment deltas)
  // must quiesce dispatch first; snapshotCounters() documents the same
  // caveat in API form and reads all three in one call.
  struct TrafficCounters {
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
    std::uint64_t injectedFailures = 0;
  };
  // One relaxed read of each counter. Coherent only while no dispatch is in
  // flight; mid-run values are per-counter accurate but mutually skewed by
  // at most the requests currently inside dispatch().
  TrafficCounters snapshotCounters() const {
    TrafficCounters counters;
    counters.requests = totalRequests_.load(std::memory_order_relaxed);
    counters.bytes = totalBytes_.load(std::memory_order_relaxed);
    counters.injectedFailures =
        injectedFailures_.load(std::memory_order_relaxed);
    return counters;
  }
  std::uint64_t totalRequests() const {
    return totalRequests_.load(std::memory_order_relaxed);
  }
  std::uint64_t totalBytesTransferred() const {
    return totalBytes_.load(std::memory_order_relaxed);
  }
  // Zeroes requests and bytes (not injectedFailures, whose consumers track
  // lifetime totals across failure-injection experiments). Safe to call
  // concurrently with dispatch — each store is atomic — but see the
  // ordering contract above for what a concurrent reader may observe.
  void resetCounters() {
    totalRequests_.store(0, std::memory_order_relaxed);
    totalBytes_.store(0, std::memory_order_relaxed);
  }

 private:
  // Annotates an exchange with the injected action and bumps the lifetime
  // failure counter plus the per-action obs counters.
  void recordInjectedFault(Exchange& exchange, faults::Action action);

  struct HostEntry {
    std::shared_ptr<HttpHandler> handler;
    LatencyProfile profile;
    // Per-host latency stream: forked from the network seed, keyed by host
    // name, advanced only by requests to this host.
    util::Pcg32 rng;
    // Fault-schedule cursors for this host (logical indices, flap phases);
    // mutated under the host lock only.
    faults::HostFaultState faultState;
    // Serializes handler invocation and RNG draws for this host.
    std::mutex mutex;
  };

  std::map<std::string, std::unique_ptr<HostEntry>> hosts_;
  mutable std::shared_mutex registryMutex_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> totalRequests_{0};
  std::atomic<std::uint64_t> totalBytes_{0};
  std::atomic<std::uint64_t> injectedFailures_{0};
  std::atomic<double> wallLatencyScale_{0.0};
  // The installed fault plan and its generation counter. Each install bumps
  // the generation, which the per-host states notice to reset their
  // cursors. A plain mutex: the critical section is two pointer-sized
  // copies, far cheaper than the handler work it precedes.
  std::shared_ptr<const faults::FaultPlan> faultPlan_;
  std::uint64_t faultPlanGeneration_ = 0;
  mutable std::mutex faultPlanMutex_;
};

// The seeded-latency simulation is one transport among others; the name the
// transport seam documentation uses for it.
using SimTransport = Network;

}  // namespace cookiepicker::net
