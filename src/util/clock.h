// Simulated wall clock.
//
// All simulated timing in the repository — cookie expiry, page-generation
// timestamps, network latency accounting, think time — is driven by a
// SimClock rather than the host clock, so experiments are deterministic and
// can fast-forward through days of "browsing" instantly. Real (host) time is
// only used by the benchmarks to measure the actual CPU cost of the
// detection algorithms, via StopWatch.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace cookiepicker::util {

// Milliseconds since the simulation epoch.
using SimTimeMs = std::int64_t;

class SimClock {
 public:
  // The epoch is arbitrary; we start at a fixed date-like offset so that
  // rendered timestamps look plausible and cookie expiries are positive.
  explicit SimClock(SimTimeMs startMs = kDefaultStartMs) : nowMs_(startMs) {}

  SimTimeMs nowMs() const { return nowMs_; }

  void advanceMs(SimTimeMs deltaMs) { nowMs_ += deltaMs; }
  void advanceSeconds(double seconds) {
    nowMs_ += static_cast<SimTimeMs>(seconds * 1000.0);
  }
  void advanceDays(double days) { advanceSeconds(days * 86400.0); }

  // Renders the current simulated time as "day N, HH:MM:SS.mmm" — used by
  // page templates that embed a timestamp (a noise source CVCE must filter).
  std::string timestampString() const;

  static constexpr SimTimeMs kDefaultStartMs = 1'000'000'000;  // ~11.6 days

 private:
  SimTimeMs nowMs_;
};

// Host-time stopwatch for measuring real algorithm cost in benches/tests.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsedMs() const {
    const auto delta = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(delta).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cookiepicker::util
