# Empty compiler generated dependencies file for recovery_walkthrough.
# This may be replaced when dependencies are built.
