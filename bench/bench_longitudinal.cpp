// Longitudinal privacy exposure: two weeks of realistic browsing (Zipf site
// popularity, several sessions a day) over a 40-site population, with and
// without CookiePicker. Prints a day-by-day series of tracking cookies
// resident in the jar — the figure-style view of the paper's end goal:
// useful cookies kept, trackers driven out as sites finish training.
#include <cstdio>

#include "browser/browser.h"
#include "browser/session_model.h"
#include "core/cookie_picker.h"
#include "net/network.h"
#include "server/generator.h"
#include "util/clock.h"
#include "util/stats.h"

namespace {

using namespace cookiepicker;

struct DayStats {
  int trackersResident = 0;
  int usefulResident = 0;
};

std::vector<DayStats> runTimeline(bool withPicker, int days,
                                  const std::vector<server::SiteSpec>& roster,
                                  std::set<std::string>* usefulNamesOut) {
  util::SimClock clock;
  net::Network network(777);
  browser::Browser browser(network, clock);
  core::CookiePickerConfig config;
  config.autoEnforce = true;
  config.forcum.stableViewThreshold = 8;
  core::CookiePicker picker(browser, config);

  server::registerRoster(network, clock, roster);
  std::vector<std::string> domains;
  std::set<std::string> usefulNames;
  for (const server::SiteSpec& spec : roster) {
    domains.push_back(spec.domain);
    for (const std::string& name : spec.usefulCookieNames()) {
      usefulNames.insert(name);
    }
  }
  if (usefulNamesOut != nullptr) *usefulNamesOut = usefulNames;

  browser::UserSessionModel trace(domains, {}, 4242);
  std::vector<DayStats> series;
  int day = 0;
  while (day < days) {
    const auto step = trace.next();
    if (step.dayStart) {
      // Sample the jar at the day boundary, then "overnight": browser
      // restart (session cookies die) and the clock jumps.
      DayStats stats;
      for (const cookies::CookieRecord* record : browser.jar().all()) {
        if (!record->persistent) continue;
        if (usefulNames.contains(record->key.name)) {
          ++stats.usefulResident;
        } else {
          ++stats.trackersResident;
        }
      }
      series.push_back(stats);
      browser.jar().endSession();
      clock.advanceDays(0.5);
      ++day;
    }
    if (withPicker) {
      picker.browse(step.url);
    } else {
      browser.visit(step.url);
      browser.think();
    }
  }
  return series;
}

}  // namespace

int main() {
  std::printf("=== Longitudinal exposure: 14 days of browsing, 40 sites ===\n\n");

  const auto roster = server::measurementRoster(40, 1234);
  std::set<std::string> usefulNames;
  const auto vanilla = runTimeline(false, 14, roster, nullptr);
  const auto picked = runTimeline(true, 14, roster, &usefulNames);

  util::TextTable table({"day", "trackers (no CookiePicker)",
                         "trackers (CookiePicker)",
                         "useful kept (CookiePicker)"});
  for (std::size_t day = 0; day < picked.size(); ++day) {
    table.addRow({std::to_string(day + 1),
                  std::to_string(vanilla[day].trackersResident),
                  std::to_string(picked[day].trackersResident),
                  std::to_string(picked[day].usefulResident)});
  }
  std::printf("%s\n", table.render().c_str());

  const DayStats& lastVanilla = vanilla.back();
  const DayStats& lastPicked = picked.back();
  std::printf("day-14 tracker reduction: %d -> %d (%.0f%%)\n",
              lastVanilla.trackersResident, lastPicked.trackersResident,
              lastVanilla.trackersResident == 0
                  ? 0.0
                  : 100.0 *
                        (lastVanilla.trackersResident -
                         lastPicked.trackersResident) /
                        lastVanilla.trackersResident);
  std::printf(
      "Expected shape: without CookiePicker the tracker population grows\n"
      "with site coverage and never shrinks; with it, popular (frequently\n"
      "revisited) sites finish training within days and their trackers are\n"
      "purged, while the useful-cookie count stays at its natural level.\n");
  return 0;
}
