#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cookiepicker::util {

void RunningStats::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const double sample : samples_) total += sample;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::formatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto renderRow = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : headers_[i];
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string separator = "+";
  for (const std::size_t width : widths) {
    separator += std::string(width + 2, '-') + "+";
  }
  separator += "\n";

  std::string output = separator + renderRow(headers_) + separator;
  for (const auto& row : rows_) output += renderRow(row);
  output += separator;
  return output;
}

}  // namespace cookiepicker::util
