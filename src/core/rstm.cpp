#include "core/rstm.h"

#include <algorithm>
#include <vector>

namespace cookiepicker::core {

namespace {

using dom::Node;

// Figure 2. `level` is the level of A and B's *parents* per the paper's
// phrasing; the roots of the whole comparison are called with level 0 and
// occupy currentLevel 1.
std::size_t rstmRecursive(const Node& a, const Node& b, int level,
                          int maxLevel) {
  // Line 1-3: different symbols → no match at all.
  if (a.name() != b.name()) return 0;
  // Line 4.
  const int currentLevel = level + 1;
  // Lines 5-8: leaf pairs, non-visible pairs, and pairs beyond the level
  // restriction contribute nothing (and are not descended into).
  if (a.childCount() == 0 || b.childCount() == 0 ||
      !isVisibleStructuralNode(a) || !isVisibleStructuralNode(b) ||
      currentLevel > maxLevel) {
    return 0;
  }
  // Lines 9-19: DP over first-level subtrees.
  const std::size_t m = a.childCount();
  const std::size_t n = b.childCount();
  std::vector<std::vector<std::size_t>> M(m + 1,
                                          std::vector<std::size_t>(n + 1, 0));
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t w =
          rstmRecursive(a.child(i - 1), b.child(j - 1), currentLevel,
                        maxLevel);
      M[i][j] = std::max({M[i][j - 1], M[i - 1][j], M[i - 1][j - 1] + w});
    }
  }
  // Line 20.
  return M[m][n] + 1;
}

std::size_t countRecursive(const Node& node, int level, int maxLevel) {
  const int currentLevel = level + 1;
  if (node.childCount() == 0 || !isVisibleStructuralNode(node) ||
      currentLevel > maxLevel) {
    return 0;
  }
  std::size_t total = 1;
  for (const auto& child : node.children()) {
    total += countRecursive(*child, currentLevel, maxLevel);
  }
  return total;
}

}  // namespace

bool isVisibleStructuralNode(const dom::Node& node) {
  if (node.isElement()) return !dom::isNonVisualTag(node.name());
  // Document nodes act as containers when comparison starts above <body>.
  if (node.isDocument()) return true;
  // Comments have no visual effect; text nodes are leaves handled by CVCE.
  return false;
}

std::size_t restrictedSimpleTreeMatching(const dom::Node& a,
                                         const dom::Node& b, int maxLevel) {
  return rstmRecursive(a, b, /*level=*/0, maxLevel);
}

std::size_t countRestrictedNodes(const dom::Node& root, int maxLevel) {
  return countRecursive(root, /*level=*/0, maxLevel);
}

double nTreeSim(const dom::Node& a, const dom::Node& b, int maxLevel) {
  const auto matched =
      static_cast<double>(restrictedSimpleTreeMatching(a, b, maxLevel));
  const auto countA = static_cast<double>(countRestrictedNodes(a, maxLevel));
  const auto countB = static_cast<double>(countRestrictedNodes(b, maxLevel));
  const double denominator = countA + countB - matched;
  // Two trees with nothing countable in the compared region are trivially
  // identical as far as RSTM can see.
  return denominator <= 0.0 ? 1.0 : matched / denominator;
}

const dom::Node& comparisonRoot(const dom::Node& document) {
  const dom::Node* body = document.findFirst("body");
  return body != nullptr ? *body : document;
}

}  // namespace cookiepicker::core
