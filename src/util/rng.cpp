#include "util/rng.h"

#include <cmath>

namespace cookiepicker::util {

std::uint32_t Pcg32::uniform(std::uint32_t lo, std::uint32_t hi) {
  const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t product = static_cast<std::uint64_t>(next()) * range;
  auto low = static_cast<std::uint32_t>(product);
  if (low < range) {
    const auto threshold = static_cast<std::uint32_t>(-range % range);
    while (low < threshold) {
      product = static_cast<std::uint64_t>(next()) * range;
      low = static_cast<std::uint32_t>(product);
    }
  }
  return lo + static_cast<std::uint32_t>(product >> 32U);
}

double Pcg32::uniform01() {
  // 32 random bits scaled into [0,1); enough resolution for simulation use.
  return next() * (1.0 / 4294967296.0);
}

double Pcg32::normal(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 1e-12;
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * radius * std::cos(theta);
}

double Pcg32::logNormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Pcg32::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Pcg32 Pcg32::fork(std::string_view tag) {
  const std::uint64_t tagHash = fnv1a64(tag);
  // Mix current state with the tag so forks from the same parent differ and
  // forks with the same tag from identical parents agree.
  return Pcg32(state_ ^ tagHash, inc_ ^ (tagHash * 0x9e3779b97f4a7c15ULL));
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace cookiepicker::util
