# Empty compiler generated dependencies file for bench_fig3_trees.
# This may be replaced when dependencies are built.
