// Reproduces the measurement claims of Section 2 (from the authors'
// companion study [24], WM-CS-2007-03): first-party persistent cookies are
// widely used, and "above 60% of them are set to expire after one year or
// even longer". Crawls a synthetic population of 500 sites across the 15
// directory categories and prints the usage and lifetime distributions.
#include <cstdio>

#include "measure/census.h"
#include "server/generator.h"
#include "util/stats.h"

int main() {
  using namespace cookiepicker;

  constexpr int kSites = 500;
  std::printf("=== Measurement study: cookie usage over %d sites ===\n\n",
              kSites);

  const auto roster = server::measurementRoster(kSites, 2007);
  const measure::CensusReport report = measure::runCensus(roster);

  std::printf("sites visited                  : %d\n", report.sitesVisited);
  std::printf("sites setting any cookie       : %d (%.1f%%)\n",
              report.sitesSettingCookies,
              100.0 * report.sitesSettingCookies / report.sitesVisited);
  std::printf("sites setting persistent       : %d (%.1f%%)\n",
              report.sitesSettingPersistent,
              100.0 * report.sitesSettingPersistent / report.sitesVisited);
  std::printf("cookies observed               : %d (%d persistent, %d "
              "session)\n\n",
              report.totalCookies(), report.persistentCookies(),
              report.sessionCookies());

  util::TextTable lifetimes({"persistent-cookie lifetime", "count",
                             "fraction"});
  for (const auto& [label, count, fraction] : report.lifetimeBuckets()) {
    lifetimes.addRow({label, std::to_string(count),
                      util::TextTable::formatDouble(100.0 * fraction, 1) +
                          "%"});
  }
  std::printf("%s\n", lifetimes.render().c_str());

  const double yearPlus =
      report.persistentFractionWithLifetimeAtLeast(365LL * 86400);
  std::printf("persistent cookies living >= 1 year : %.1f%%   "
              "[paper: above 60%%]\n\n",
              100.0 * yearPlus);

  util::TextTable categories({"category", "persistent cookies"});
  for (const auto& [category, count] : report.persistentPerCategory()) {
    categories.addRow({category, std::to_string(count)});
  }
  std::printf("%s", categories.render().c_str());
  return 0;
}
