// The deterministic fault-injection engine: plan format round-trips, every
// action observable at the dispatch boundary, schedule semantics (index
// windows, scopes, flapping, retry/logical-index sharing), determinism
// across identical runs, the legacy setFailureProbability sugar, and the
// acceptance invariant — a faulty 64-host fleet is byte-identical for 1 vs
// 8 workers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "net/http.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "server/generator.h"
#include "test_support.h"

namespace cookiepicker {
namespace {

using testsupport::SimWorld;

std::shared_ptr<const faults::FaultPlan> planOf(const std::string& text) {
  const auto parsed = faults::FaultPlan::parse(text);
  EXPECT_TRUE(parsed.has_value()) << "unparseable plan:\n" << text;
  if (!parsed.has_value()) return nullptr;
  return std::make_shared<const faults::FaultPlan>(*parsed);
}

net::HttpRequest makeRequest(const std::string& url,
                             net::RequestKind kind = net::RequestKind::Container,
                             int attempt = 0) {
  net::HttpRequest request;
  const auto parsed = net::Url::parse(url);
  EXPECT_TRUE(parsed.has_value()) << url;
  if (parsed.has_value()) request.url = *parsed;
  request.kind = kind;
  request.attempt = attempt;
  return request;
}

// --- plan format -------------------------------------------------------------

TEST(FaultPlanFormat, SerializeParseRoundTrips) {
  faults::FaultPlan plan;
  faults::FaultRule drop;
  drop.host = "shop.example";
  drop.scope = faults::Scope::Hidden;
  drop.action = faults::Action::ConnectionDrop;
  drop.firstIndex = 2;
  drop.lastIndex = 5;
  drop.failCount = 2;
  drop.recoverCount = 3;
  drop.probability = 0.25;
  plan.rules.push_back(drop);
  faults::FaultRule error;
  error.action = faults::Action::ServerError;
  error.status = 502;
  plan.rules.push_back(error);
  faults::FaultRule truncate;
  truncate.scope = faults::Scope::Subresource;
  truncate.action = faults::Action::TruncateBody;
  truncate.truncateAtBytes = 77;
  plan.rules.push_back(truncate);
  faults::FaultRule timeout;
  timeout.action = faults::Action::Timeout;
  timeout.extraLatencyMs = 1234.5;
  plan.rules.push_back(timeout);
  faults::FaultRule corrupt;
  corrupt.scope = faults::Scope::Container;
  corrupt.action = faults::Action::CorruptSetCookie;
  plan.rules.push_back(corrupt);
  faults::FaultRule drip;
  drip.action = faults::Action::SlowDrip;
  drip.extraLatencyMs = 250.0;
  plan.rules.push_back(drip);

  const std::string text = plan.serialize();
  EXPECT_NE(text.find("# cookiepicker fault plan v1"), std::string::npos);
  // kAllRequests renders as the symbolic form, not a magic number.
  EXPECT_NE(text.find("last=max"), std::string::npos);

  const auto reparsed = faults::FaultPlan::parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, plan);
  // And the round trip is a fixed point: serialize(parse(serialize)) is
  // byte-identical, so plans can be diffed and stored canonically.
  EXPECT_EQ(reparsed->serialize(), text);
}

TEST(FaultPlanFormat, ParserAcceptsAnyKeyOrderCommentsAndBlanks) {
  const auto plan = faults::FaultPlan::parse(
      "# hand-written plan\n"
      "\n"
      "rule p=0.5 action=timeout host=a.example extra-ms=50 scope=hidden\n"
      "   \n"
      "rule action=server-error\n");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->rules.size(), 2u);
  const faults::FaultRule& rule = plan->rules[0];
  EXPECT_EQ(rule.host, "a.example");
  EXPECT_EQ(rule.scope, faults::Scope::Hidden);
  EXPECT_EQ(rule.action, faults::Action::Timeout);
  EXPECT_DOUBLE_EQ(rule.probability, 0.5);
  EXPECT_DOUBLE_EQ(rule.extraLatencyMs, 50.0);
  // Unspecified keys keep their defaults.
  EXPECT_EQ(rule.firstIndex, 0u);
  EXPECT_EQ(rule.lastIndex, faults::kAllRequests);
  EXPECT_EQ(rule.failCount, 0u);
  EXPECT_EQ(plan->rules[1].host, "*");
}

TEST(FaultPlanFormat, ParserRejectsMalformedRules) {
  const char* bad[] = {
      "rule",                                   // action is mandatory
      "rule action=server-error bogus=1",       // unknown key
      "rule action=server-error action=timeout",  // duplicate key
      "rule action=no-such-action",
      "rule action=server-error scope=weird",
      "rule action=server-error p=1.5",
      "rule action=server-error p=-0.1",
      "rule action=server-error status=99",
      "rule action=server-error status=600",
      "rule action=server-error first=5 last=2",
      "rule action=timeout extra-ms=-5",
      "rule action=server-error host=",         // empty host
      "fault action=server-error",              // first token must be `rule`
  };
  for (const char* text : bad) {
    EXPECT_FALSE(faults::FaultPlan::parse(text).has_value()) << text;
  }
}

TEST(FaultPlanFormat, UniformFailureIsOneWildcard503Rule) {
  const auto plan = faults::FaultPlan::uniformFailure(0.3);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->rules.size(), 1u);
  const faults::FaultRule& rule = plan->rules[0];
  EXPECT_EQ(rule.host, "*");
  EXPECT_EQ(rule.scope, faults::Scope::Any);
  EXPECT_EQ(rule.action, faults::Action::ServerError);
  EXPECT_EQ(rule.status, 503);
  EXPECT_DOUBLE_EQ(rule.probability, 0.3);
  // Out-of-range probabilities clamp instead of producing invalid plans.
  EXPECT_DOUBLE_EQ(faults::FaultPlan::uniformFailure(7.0)->rules[0].probability,
                   1.0);
  EXPECT_DOUBLE_EQ(
      faults::FaultPlan::uniformFailure(-2.0)->rules[0].probability, 0.0);
}

// --- every action at the dispatch boundary -----------------------------------

TEST(FaultDispatch, ServerErrorShortCircuitsWithLegacy503Bytes) {
  SimWorld world;
  const auto spec = world.addGenericSite("err.example");
  world.network.setFaultPlan(planOf("rule action=server-error"));
  const net::Exchange exchange =
      world.network.dispatch(makeRequest(world.urlFor(spec)));
  EXPECT_EQ(exchange.response.status, 503);
  EXPECT_EQ(exchange.response.statusText, "Service Unavailable");
  // Byte-compatible with the error page the legacy knob used to fabricate.
  EXPECT_EQ(exchange.response.body,
            "<html><body><h1>503 Service Unavailable</h1></body></html>");
  EXPECT_STREQ(exchange.injectedFault, "server-error");
  EXPECT_EQ(world.network.injectedFailures(), 1u);

  world.network.setFaultPlan(planOf("rule action=server-error status=502"));
  const net::Exchange badGateway =
      world.network.dispatch(makeRequest(world.urlFor(spec)));
  EXPECT_EQ(badGateway.response.status, 502);
  EXPECT_EQ(badGateway.response.body,
            "<html><body><h1>502 Server Error</h1></body></html>");
}

TEST(FaultDispatch, ConnectionDropIsTransportLevelFailure) {
  SimWorld world;
  const auto spec = world.addGenericSite("drop.example");
  world.network.setFaultPlan(planOf("rule action=connection-drop"));
  const net::Exchange exchange =
      world.network.dispatch(makeRequest(world.urlFor(spec)));
  EXPECT_EQ(exchange.response.status, 0);
  EXPECT_EQ(exchange.response.statusText, "connection dropped");
  EXPECT_TRUE(exchange.response.body.empty());
  EXPECT_STREQ(exchange.injectedFault, "connection-drop");
}

TEST(FaultDispatch, TimeoutBurnsTheDeadlineBeforeFailing) {
  SimWorld world;
  const auto spec = world.addGenericSite("slow.example");
  world.network.setFaultPlan(planOf("rule action=timeout extra-ms=2500"));
  const net::Exchange exchange =
      world.network.dispatch(makeRequest(world.urlFor(spec)));
  EXPECT_EQ(exchange.response.status, 0);
  EXPECT_EQ(exchange.response.statusText, "timeout");
  EXPECT_GE(exchange.latencyMs, 2500.0);  // deadline + transit latency
  EXPECT_STREQ(exchange.injectedFault, "timeout");
}

TEST(FaultDispatch, TruncateBodyCutsPayloadButDeclaresFullLength) {
  // Two same-seed worlds: the truncated body must be a strict prefix of
  // the clean one, and the declared Content-Length must still name the
  // original size — that mismatch is what makes truncation detectable.
  SimWorld clean(7);
  SimWorld faulty(7);
  const auto spec = clean.addGenericSite("cut.example");
  faulty.addGenericSite("cut.example");
  faulty.network.setFaultPlan(planOf("rule action=truncate-body truncate-at=64"));

  const net::Exchange whole = clean.network.dispatch(makeRequest(clean.urlFor(spec)));
  const net::Exchange cut = faulty.network.dispatch(makeRequest(faulty.urlFor(spec)));
  ASSERT_GT(whole.response.body.size(), 64u);
  EXPECT_EQ(cut.response.body.size(), 64u);
  EXPECT_EQ(cut.response.body, whole.response.body.substr(0, 64));
  EXPECT_EQ(cut.response.headers.get("Content-Length").value_or(""),
            std::to_string(whole.response.body.size()));
  EXPECT_STREQ(cut.injectedFault, "truncate-body");
}

TEST(FaultDispatch, IneffectiveTruncationIsNotCountedAsInjected) {
  SimWorld world;
  const auto spec = world.addGenericSite("cut.example");
  world.network.setFaultPlan(
      planOf("rule action=truncate-body truncate-at=1048576"));
  const net::Exchange exchange =
      world.network.dispatch(makeRequest(world.urlFor(spec)));
  // The body was already shorter than the cut point: nothing changed, so
  // nothing is reported as a fault.
  EXPECT_EQ(exchange.injectedFault, nullptr);
  EXPECT_EQ(world.network.injectedFailures(), 0u);
  EXPECT_EQ(exchange.response.status, 200);
}

TEST(FaultDispatch, CorruptSetCookieMangledHeaderOnly) {
  SimWorld clean(9);
  SimWorld faulty(9);
  const auto spec = clean.addGenericSite("mangle.example");
  faulty.addGenericSite("mangle.example");
  faulty.network.setFaultPlan(planOf("rule action=corrupt-set-cookie"));

  const net::Exchange good = clean.network.dispatch(makeRequest(clean.urlFor(spec)));
  const net::Exchange bad = faulty.network.dispatch(makeRequest(faulty.urlFor(spec)));
  const auto goodCookies = good.response.setCookieHeaders();
  const auto badCookies = bad.response.setCookieHeaders();
  ASSERT_FALSE(goodCookies.empty());  // the site does set cookies here
  ASSERT_EQ(badCookies.size(), goodCookies.size());
  EXPECT_NE(badCookies, goodCookies);
  // Only the Set-Cookie headers were touched.
  EXPECT_EQ(bad.response.body, good.response.body);
  EXPECT_EQ(bad.response.status, good.response.status);
  EXPECT_STREQ(bad.injectedFault, "corrupt-set-cookie");
}

TEST(FaultDispatch, SlowDripAddsExactlyTheConfiguredDelay) {
  SimWorld clean(13);
  SimWorld faulty(13);
  const auto spec = clean.addGenericSite("drip.example");
  faulty.addGenericSite("drip.example");
  faulty.network.setFaultPlan(planOf("rule action=slow-drip extra-ms=750"));

  const net::Exchange fast = clean.network.dispatch(makeRequest(clean.urlFor(spec)));
  const net::Exchange slow = faulty.network.dispatch(makeRequest(faulty.urlFor(spec)));
  // Same seed, same latency draw: the delta is exactly the drip delay, and
  // the payload is untouched.
  EXPECT_DOUBLE_EQ(slow.latencyMs, fast.latencyMs + 750.0);
  EXPECT_EQ(slow.response.body, fast.response.body);
  EXPECT_STREQ(slow.injectedFault, "slow-drip");
}

// --- schedule semantics ------------------------------------------------------

TEST(FaultSchedule, IndexWindowTargetsSpecificRequests) {
  SimWorld world;
  const auto spec = world.addGenericSite("window.example");
  world.network.setFaultPlan(planOf("rule action=server-error first=2 last=3"));
  std::vector<int> statuses;
  for (int i = 0; i < 6; ++i) {
    statuses.push_back(
        world.network.dispatch(makeRequest(world.urlFor(spec))).response.status);
  }
  EXPECT_EQ(statuses, (std::vector<int>{200, 200, 503, 503, 200, 200}));
}

TEST(FaultSchedule, ScopeRestrictsToRequestKind) {
  SimWorld world;
  const auto spec = world.addGenericSite("scope.example");
  world.network.setFaultPlan(planOf("rule scope=hidden action=connection-drop"));
  EXPECT_EQ(world.network
                .dispatch(makeRequest(world.urlFor(spec),
                                      net::RequestKind::Container))
                .response.status,
            200);
  EXPECT_EQ(world.network
                .dispatch(makeRequest(world.urlFor(spec),
                                      net::RequestKind::Subresource))
                .response.status,
            200);
  EXPECT_EQ(world.network
                .dispatch(
                    makeRequest(world.urlFor(spec), net::RequestKind::Hidden))
                .response.status,
            0);
}

TEST(FaultSchedule, FlappingFailsKThenRecovers) {
  SimWorld world;
  const auto spec = world.addGenericSite("flap.example");
  world.network.setFaultPlan(
      planOf("rule action=connection-drop fail=2 recover=3"));
  std::vector<int> statuses;
  for (int i = 0; i < 10; ++i) {
    statuses.push_back(
        world.network.dispatch(makeRequest(world.urlFor(spec))).response.status);
  }
  EXPECT_EQ(statuses,
            (std::vector<int>{0, 0, 200, 200, 200, 0, 0, 200, 200, 200}));
}

TEST(FaultSchedule, RetriesShareTheFirstAttemptsLogicalIndex) {
  SimWorld world;
  const auto spec = world.addGenericSite("retry.example");
  world.network.setFaultPlan(
      planOf("rule action=connection-drop first=1 last=1"));
  const std::string url = world.urlFor(spec);
  EXPECT_EQ(world.network.dispatch(makeRequest(url)).response.status, 200);
  // Logical request #1 fails — and so does every retry of it: a retry
  // carries attempt > 0 and therefore re-hits the same schedule slot
  // instead of consuming the next one.
  EXPECT_EQ(world.network
                .dispatch(makeRequest(url, net::RequestKind::Container, 0))
                .response.status,
            0);
  EXPECT_EQ(world.network
                .dispatch(makeRequest(url, net::RequestKind::Container, 1))
                .response.status,
            0);
  EXPECT_EQ(world.network
                .dispatch(makeRequest(url, net::RequestKind::Container, 2))
                .response.status,
            0);
  // The next fresh request is logical #2, outside the window.
  EXPECT_EQ(world.network.dispatch(makeRequest(url)).response.status, 200);
}

TEST(FaultSchedule, HostScopedRuleLeavesOtherHostsAlone) {
  SimWorld world;
  const auto sick = world.addGenericSite("sick.example");
  const auto healthy = world.addGenericSite("healthy.example", 8);
  world.network.setFaultPlan(
      planOf("rule host=sick.example action=server-error"));
  EXPECT_EQ(world.network.dispatch(makeRequest(world.urlFor(sick)))
                .response.status,
            503);
  EXPECT_EQ(world.network.dispatch(makeRequest(world.urlFor(healthy)))
                .response.status,
            200);
}

TEST(FaultSchedule, ReinstallingAPlanRestartsItsSchedule) {
  SimWorld world;
  const auto spec = world.addGenericSite("restart.example");
  const std::string text = "rule action=server-error first=0 last=0";
  world.network.setFaultPlan(planOf(text));
  EXPECT_EQ(world.network.dispatch(makeRequest(world.urlFor(spec)))
                .response.status,
            503);
  EXPECT_EQ(world.network.dispatch(makeRequest(world.urlFor(spec)))
                .response.status,
            200);
  // A new setFaultPlan — even of an identical plan — is a new schedule
  // generation: logical indices and flap cursors start over.
  world.network.setFaultPlan(planOf(text));
  EXPECT_EQ(world.network.dispatch(makeRequest(world.urlFor(spec)))
                .response.status,
            503);
}

TEST(FaultSchedule, ProbabilisticPlansReplayIdentically) {
  const std::string planText =
      "rule action=connection-drop p=0.4\n"
      "rule action=slow-drip extra-ms=100 p=0.5\n";
  auto run = [&](std::uint64_t seed) {
    SimWorld world(seed);
    const auto spec = world.addGenericSite("replay.example");
    world.network.setFaultPlan(planOf(planText));
    std::vector<std::string> transcript;
    for (int i = 0; i < 40; ++i) {
      const net::Exchange exchange =
          world.network.dispatch(makeRequest(world.urlFor(spec)));
      transcript.push_back(
          std::to_string(exchange.response.status) + "/" +
          std::to_string(exchange.latencyMs) + "/" +
          (exchange.injectedFault == nullptr ? "clean" : exchange.injectedFault));
    }
    return transcript;
  };
  const auto first = run(99);
  const auto second = run(99);
  EXPECT_EQ(first, second);
  // And the plan actually bites on this stream: both outcomes occur.
  int drops = 0, cleans = 0;
  for (const std::string& entry : first) {
    if (entry.find("connection-drop") != std::string::npos) ++drops;
    if (entry.find("clean") != std::string::npos) ++cleans;
  }
  EXPECT_GT(drops, 0);
  EXPECT_GT(cleans, 0);
}

// --- legacy sugar ------------------------------------------------------------

TEST(LegacySugar, FailureProbabilityCompilesToUniformPlan) {
  SimWorld legacy(11);
  SimWorld planned(11);
  const auto spec = legacy.addGenericSite("sugar.example");
  planned.addGenericSite("sugar.example");

  legacy.network.setFailureProbability(0.3);
  ASSERT_NE(legacy.network.faultPlan(), nullptr);
  EXPECT_EQ(*legacy.network.faultPlan(),
            *faults::FaultPlan::uniformFailure(0.3));
  planned.network.setFaultPlan(faults::FaultPlan::uniformFailure(0.3));

  for (int i = 0; i < 60; ++i) {
    const net::Exchange a =
        legacy.network.dispatch(makeRequest(legacy.urlFor(spec)));
    const net::Exchange b =
        planned.network.dispatch(makeRequest(planned.urlFor(spec)));
    ASSERT_EQ(a.response.status, b.response.status) << "request " << i;
    ASSERT_EQ(a.latencyMs, b.latencyMs) << "request " << i;
    ASSERT_EQ(a.response.body, b.response.body) << "request " << i;
  }
  // Probability zero clears the plan entirely.
  legacy.network.setFailureProbability(0.0);
  EXPECT_EQ(legacy.network.faultPlan(), nullptr);
}

// --- traffic counters --------------------------------------------------------

TEST(NetworkCounters, ResetPreservesInjectedFailures) {
  SimWorld world;
  const auto spec = world.addGenericSite("count.example");
  world.network.setFaultPlan(planOf("rule action=server-error"));
  for (int i = 0; i < 3; ++i) {
    world.network.dispatch(makeRequest(world.urlFor(spec)));
  }
  EXPECT_EQ(world.network.injectedFailures(), 3u);
  EXPECT_EQ(world.network.snapshotCounters().requests, 3u);

  // The documented contract: resetCounters() zeroes the traffic counters
  // but never injectedFailures, whose consumers track deltas themselves.
  world.network.resetCounters();
  const net::Network::TrafficCounters counters = world.network.snapshotCounters();
  EXPECT_EQ(counters.requests, 0u);
  EXPECT_EQ(counters.bytes, 0u);
  EXPECT_EQ(counters.injectedFailures, 3u);
  world.network.dispatch(makeRequest(world.urlFor(spec)));
  EXPECT_EQ(world.network.injectedFailures(), 4u);
}

// --- fleet determinism under faults ------------------------------------------

// The PR's acceptance invariant: an aggressive plan over a 64-host fleet
// produces byte-identical state, jar, deterministic metrics, and audit
// bytes whether 1 worker or 8 raced through the roster.
TEST(FaultFleet, FaultyFleetByteIdenticalForOneVsEightWorkers) {
  const auto roster = server::measurementRoster(64, 2026);
  const auto plan = planOf(
      "rule scope=hidden action=connection-drop fail=1 recover=3\n"
      "rule scope=subresource action=slow-drip extra-ms=120 p=0.2\n"
      "rule scope=container action=server-error p=0.05\n"
      "rule action=truncate-body truncate-at=900 p=0.1\n");
  ASSERT_NE(plan, nullptr);

  testsupport::FleetRunOptions options;
  options.viewsPerHost = 4;
  options.seed = 2026;
  options.collectObservability = true;
  options.faultPlan = plan;
  options.workers = 1;
  const fleet::FleetReport serial = testsupport::runMeasurementFleet(roster, options);
  options.workers = 8;
  const fleet::FleetReport parallel =
      testsupport::runMeasurementFleet(roster, options);

  EXPECT_EQ(serial.serializeState(), parallel.serializeState());
  EXPECT_EQ(serial.mergedJar().serialize(), parallel.mergedJar().serialize());
  EXPECT_EQ(serial.mergedMetrics().deterministicJson(),
            parallel.mergedMetrics().deterministicJson());
  EXPECT_EQ(serial.auditJsonl(), parallel.auditJsonl());

  // The run was genuinely faulty, not a vacuous pass.
  const obs::MetricsSnapshot metrics = serial.mergedMetrics();
  EXPECT_GT(metrics.counter(obs::Counter::FaultConnectionDrops), 0u);
  EXPECT_GT(metrics.counter(obs::Counter::HiddenFetchRetries), 0u);
  EXPECT_GT(metrics.counter(obs::Counter::NetworkFailuresInjected), 0u);
}

}  // namespace
}  // namespace cookiepicker
