# Empty dependencies file for html_torture_test.
# This may be replaced when dependencies are built.
