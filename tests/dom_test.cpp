#include <gtest/gtest.h>

#include "dom/builder.h"
#include "dom/node.h"
#include "dom/serialize.h"

namespace cookiepicker::dom {
namespace {

TEST(Node, FactoriesSetTypeAndName) {
  EXPECT_TRUE(Node::makeDocument()->isDocument());
  EXPECT_EQ(Node::makeDocument()->name(), "#document");
  EXPECT_TRUE(Node::makeElement("DIV")->isElement());
  EXPECT_EQ(Node::makeElement("DIV")->name(), "div");  // lowercased
  EXPECT_EQ(Node::makeText("hi")->value(), "hi");
  EXPECT_TRUE(Node::makeComment("c")->isComment());
  EXPECT_EQ(Node::makeDoctype("HTML")->name(), "html");
}

TEST(Node, AppendChildSetsParent) {
  auto parent = Node::makeElement("div");
  Node& child = parent->appendChild(Node::makeElement("p"));
  EXPECT_EQ(child.parent(), parent.get());
  EXPECT_EQ(parent->childCount(), 1u);
}

TEST(Node, InsertChildAtPosition) {
  auto parent = Node::makeElement("div");
  parent->appendChild(Node::makeElement("a"));
  parent->appendChild(Node::makeElement("c"));
  parent->insertChild(1, Node::makeElement("b"));
  EXPECT_EQ(parent->child(0).name(), "a");
  EXPECT_EQ(parent->child(1).name(), "b");
  EXPECT_EQ(parent->child(2).name(), "c");
}

TEST(Node, InsertChildClampsIndex) {
  auto parent = Node::makeElement("div");
  parent->insertChild(99, Node::makeElement("x"));
  EXPECT_EQ(parent->childCount(), 1u);
}

TEST(Node, RemoveChildReturnsOwnership) {
  auto parent = Node::makeElement("div");
  parent->appendChild(Node::makeElement("a"));
  parent->appendChild(Node::makeElement("b"));
  auto removed = parent->removeChild(0);
  EXPECT_EQ(removed->name(), "a");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(parent->childCount(), 1u);
}

TEST(Node, AttributesCaseInsensitiveNames) {
  auto element = Node::makeElement("img");
  element->setAttribute("SRC", "/x.png");
  EXPECT_EQ(element->attribute("src").value_or(""), "/x.png");
  EXPECT_TRUE(element->hasAttribute("Src"));
  element->setAttribute("src", "/y.png");  // overwrite, not duplicate
  EXPECT_EQ(element->attributes().size(), 1u);
  EXPECT_EQ(element->attribute("src").value_or(""), "/y.png");
}

TEST(Node, AttributesIgnoredOnNonElements) {
  auto text = Node::makeText("x");
  text->setAttribute("a", "b");
  EXPECT_TRUE(text->attributes().empty());
}

TEST(Node, SubtreeSizeCountsAllNodes) {
  auto tree = buildTree("a(b(c,d),e)");
  EXPECT_EQ(tree->subtreeSize(), 5u);
}

TEST(Node, SubtreeHeight) {
  EXPECT_EQ(buildTree("a")->subtreeHeight(), 1u);
  EXPECT_EQ(buildTree("a(b(c))")->subtreeHeight(), 3u);
  EXPECT_EQ(buildTree("a(b,c(d))")->subtreeHeight(), 3u);
}

TEST(Node, CloneIsDeepAndDetached) {
  auto tree = buildTree("a(b(c),d)");
  tree->child(0).setAttribute("id", "x");
  auto copy = tree->clone();
  EXPECT_EQ(copy->subtreeSize(), 4u);
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_EQ(copy->child(0).attribute("id").value_or(""), "x");
  // Mutating the copy does not touch the original.
  copy->removeChild(0);
  EXPECT_EQ(tree->subtreeSize(), 4u);
}

TEST(Node, TextContentConcatenatesDescendants) {
  auto tree = Node::makeElement("p");
  tree->appendChild(Node::makeText("hello "));
  auto& bold = tree->appendChild(Node::makeElement("b"));
  bold.appendChild(Node::makeText("world"));
  EXPECT_EQ(tree->textContent(), "hello world");
}

TEST(Node, FindFirstPreorder) {
  auto tree = buildTree("a(b(c),c)");
  const Node* found = tree->findFirst("c");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->parent()->name(), "b");  // the nested one comes first
}

TEST(Node, FindFirstMissingReturnsNull) {
  auto tree = buildTree("a(b)");
  EXPECT_EQ(tree->findFirst("z"), nullptr);
}

TEST(Node, FindAllCollectsEveryMatch) {
  auto tree = buildTree("a(b(c),c,d(c))");
  EXPECT_EQ(tree->findAll("c").size(), 3u);
}

TEST(Preorder, VisitsNodeThenChildrenWithDepth) {
  auto tree = buildTree("a(b(c),d)");
  std::vector<std::pair<std::string, std::size_t>> visits;
  preorder(*tree, [&](const Node& node, std::size_t depth) {
    visits.emplace_back(node.name(), depth);
    return true;
  });
  const std::vector<std::pair<std::string, std::size_t>> expected = {
      {"a", 0}, {"b", 1}, {"c", 2}, {"d", 1}};
  EXPECT_EQ(visits, expected);
}

TEST(Preorder, ReturningFalsePrunesSubtree) {
  auto tree = buildTree("a(b(c),d)");
  std::vector<std::string> visits;
  preorder(*tree, [&](const Node& node, std::size_t) {
    visits.push_back(node.name());
    return node.name() != "b";
  });
  const std::vector<std::string> expected = {"a", "b", "d"};
  EXPECT_EQ(visits, expected);
}

TEST(NonVisualTags, ScriptAndStyleAreNonVisual) {
  EXPECT_TRUE(isNonVisualTag("script"));
  EXPECT_TRUE(isNonVisualTag("style"));
  EXPECT_TRUE(isNonVisualTag("head"));
  EXPECT_FALSE(isNonVisualTag("div"));
  EXPECT_FALSE(isNonVisualTag("img"));
}

// --- builder ---------------------------------------------------------------

TEST(Builder, BuildsNestedStructure) {
  auto tree = buildTree("a(b,c(d))");
  EXPECT_EQ(tree->name(), "a");
  EXPECT_EQ(tree->childCount(), 2u);
  EXPECT_EQ(tree->child(1).child(0).name(), "d");
}

TEST(Builder, TextAndCommentNodes) {
  auto tree = buildTree("p(#'hello world',!'note')");
  EXPECT_TRUE(tree->child(0).isText());
  EXPECT_EQ(tree->child(0).value(), "hello world");
  EXPECT_TRUE(tree->child(1).isComment());
  EXPECT_EQ(tree->child(1).value(), "note");
}

TEST(Builder, WhitespaceIgnored) {
  auto tree = buildTree("  a ( b , c )  ");
  EXPECT_EQ(tree->subtreeSize(), 3u);
}

TEST(Builder, MalformedInputThrows) {
  EXPECT_THROW(buildTree("a(b"), std::invalid_argument);
  EXPECT_THROW(buildTree("a)b"), std::invalid_argument);
  EXPECT_THROW(buildTree(""), std::invalid_argument);
  EXPECT_THROW(buildTree("a(b,)"), std::invalid_argument);
  EXPECT_THROW(buildTree("#x"), std::invalid_argument);  // missing quotes
}

TEST(Builder, Figure3TreesHaveRightShapes) {
  auto treeA = figure3TreeA();
  auto treeB = figure3TreeB();
  EXPECT_EQ(treeA->subtreeSize(), 14u);  // N1..N14
  EXPECT_EQ(treeB->subtreeSize(), 8u);   // N15..N22
  EXPECT_EQ(treeA->name(), "a");
  EXPECT_EQ(treeB->name(), "a");
}

// --- serialize ---------------------------------------------------------------

TEST(Serialize, ElementWithAttributesAndText) {
  auto div = Node::makeElement("div");
  div->setAttribute("id", "main");
  div->appendChild(Node::makeText("hi"));
  EXPECT_EQ(toHtml(*div), "<div id=\"main\">hi</div>");
}

TEST(Serialize, VoidElementsHaveNoEndTag) {
  auto br = Node::makeElement("br");
  EXPECT_EQ(toHtml(*br), "<br>");
  auto img = Node::makeElement("img");
  img->setAttribute("src", "/x.png");
  EXPECT_EQ(toHtml(*img), "<img src=\"/x.png\">");
}

TEST(Serialize, TextIsEscaped) {
  auto p = Node::makeElement("p");
  p->appendChild(Node::makeText("a < b & c > d"));
  EXPECT_EQ(toHtml(*p), "<p>a &lt; b &amp; c &gt; d</p>");
}

TEST(Serialize, AttributeValuesEscaped) {
  auto div = Node::makeElement("div");
  div->setAttribute("title", "say \"hi\" & go");
  EXPECT_EQ(toHtml(*div), "<div title=\"say &quot;hi&quot; &amp; go\"></div>");
}

TEST(Serialize, ScriptContentNotEscaped) {
  auto script = Node::makeElement("script");
  script->appendChild(Node::makeText("if (a < b && c > d) {}"));
  EXPECT_EQ(toHtml(*script), "<script>if (a < b && c > d) {}</script>");
}

TEST(Serialize, CommentsAndDoctype) {
  auto document = Node::makeDocument();
  document->appendChild(Node::makeDoctype("html"));
  document->appendChild(Node::makeComment(" note "));
  EXPECT_EQ(toHtml(*document), "<!DOCTYPE html><!-- note -->");
}

TEST(Serialize, StructureSignature) {
  auto tree = buildTree("html(head(title),body(div(p,p)))");
  EXPECT_EQ(structureSignature(*tree), "html(head(title),body(div(p,p)))");
}

TEST(Serialize, StructureSignatureSkipsTextAndComments) {
  auto tree = buildTree("div(#'x',p,!'c')");
  EXPECT_EQ(structureSignature(*tree), "div(p)");
}

TEST(Serialize, DebugStringShowsIndentation) {
  auto tree = buildTree("a(b)");
  const std::string debug = toDebugString(*tree);
  EXPECT_NE(debug.find("element a\n  element b"), std::string::npos);
}

}  // namespace
}  // namespace cookiepicker::dom
