#include "html/tokenizer.h"

#include <cctype>

#include "html/entities.h"
#include "util/scan.h"
#include "util/strings.h"

namespace cookiepicker::html {

namespace {

bool isTagNameStart(char ch) {
  return std::isalpha(static_cast<unsigned char>(ch)) != 0;
}

bool isWhitespace(char ch) {
  return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\f';
}

void appendLowerAscii(std::string& output, std::string_view text) {
  // Source markup is almost always lowercase already; bulk-append the
  // lowercase runs and only transcode the occasional uppercase stretch.
  std::size_t i = 0;
  while (i < text.size()) {
    const std::size_t runStart = i;
    while (i < text.size() && !(text[i] >= 'A' && text[i] <= 'Z')) ++i;
    output.append(text.data() + runStart, i - runStart);
    while (i < text.size() && text[i] >= 'A' && text[i] <= 'Z') {
      output.push_back(static_cast<char>(text[i] - 'A' + 'a'));
      ++i;
    }
  }
}

}  // namespace

bool isRawTextTag(std::string_view tagName) {
  return tagName == "script" || tagName == "style" ||
         tagName == "textarea" || tagName == "title";
}

std::vector<Token> Tokenizer::tokenizeAll(std::string_view input) {
  Tokenizer tokenizer(input);
  std::vector<Token> tokens;
  while (true) {
    Token token = tokenizer.next();
    if (token.type == TokenType::EndOfFile) break;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

Token Tokenizer::next() {
  Token token;
  next(token);
  return token;
}

bool Tokenizer::next(Token& out) {
  out.type = TokenType::EndOfFile;
  out.name.clear();
  out.text.clear();
  out.attributes.clear();
  out.selfClosing = false;
  out.sourceStart = position_;

  if (!rawTextEndTag_.empty()) {
    rawText(rawTextEndTag_, out);
    rawTextEndTag_.clear();
    return true;
  }
  if (position_ >= input_.size()) {
    return false;  // EndOfFile
  }
  if (input_[position_] == '<') {
    // '<' not followed by tag-like syntax is literal text.
    if (position_ + 1 < input_.size()) {
      const char following = input_[position_ + 1];
      if (isTagNameStart(following) || following == '/' || following == '!' ||
          following == '?') {
        scanMarkup(out);
        return true;
      }
    }
    // Lone '<' at end of input or before a non-tag character: treat as text.
    const std::size_t start = position_;
    position_ = util::findByte(input_, position_ + 1, '<');
    textToken(start, position_, out);
    return true;
  }
  const std::size_t start = position_;
  position_ = util::findByte(input_, position_, '<');
  textToken(start, position_, out);
  return true;
}

void Tokenizer::textToken(std::size_t start, std::size_t end, Token& out) {
  out.type = TokenType::Text;
  decodeEntitiesInto(input_.substr(start, end - start), out.text);
}

void Tokenizer::scanMarkup(Token& out) {
  // position_ is at '<'.
  const char following = input_[position_ + 1];
  if (following == '!') {
    if (input_.compare(position_, 4, "<!--") == 0) {
      position_ += 4;
      scanComment(out);
      return;
    }
    // "<!DOCTYPE" (any case)?
    if (input_.size() - position_ >= 9) {
      const std::string_view candidate = input_.substr(position_ + 2, 7);
      if (util::equalsIgnoreCase(candidate, "doctype")) {
        position_ += 9;
        scanDoctype(out);
        return;
      }
    }
    position_ += 2;
    scanBogusComment(out);
    return;
  }
  if (following == '?') {
    // Processing instruction — browsers treat it as a bogus comment.
    position_ += 2;
    scanBogusComment(out);
    return;
  }
  if (following == '/') {
    position_ += 2;
    scanTag(/*isEndTag=*/true, out);
    return;
  }
  position_ += 1;
  scanTag(/*isEndTag=*/false, out);
}

void Tokenizer::scanComment(Token& out) {
  out.type = TokenType::Comment;
  const std::size_t closing = input_.find("-->", position_);
  if (closing == std::string_view::npos) {
    out.text.assign(input_.substr(position_));
    position_ = input_.size();
  } else {
    out.text.assign(input_.substr(position_, closing - position_));
    position_ = closing + 3;
  }
}

void Tokenizer::scanBogusComment(Token& out) {
  out.type = TokenType::Comment;
  const std::size_t closing = util::findByte(input_, position_, '>');
  if (closing >= input_.size()) {
    out.text.assign(input_.substr(position_));
    position_ = input_.size();
  } else {
    out.text.assign(input_.substr(position_, closing - position_));
    position_ = closing + 1;
  }
}

void Tokenizer::scanDoctype(Token& out) {
  out.type = TokenType::Doctype;
  while (position_ < input_.size() && isWhitespace(input_[position_])) {
    ++position_;
  }
  const std::size_t start = position_;
  while (position_ < input_.size() && input_[position_] != '>' &&
         !isWhitespace(input_[position_])) {
    ++position_;
  }
  appendLowerAscii(out.name, input_.substr(start, position_ - start));
  const std::size_t closing = util::findByte(input_, position_, '>');
  position_ = closing >= input_.size() ? input_.size() : closing + 1;
}

void Tokenizer::scanTag(bool isEndTag, Token& token) {
  token.type = isEndTag ? TokenType::EndTag : TokenType::StartTag;

  const std::size_t nameStart = position_;
  position_ = util::TagNameScanner::find(input_, position_);
  appendLowerAscii(token.name,
                   input_.substr(nameStart, position_ - nameStart));

  if (!isEndTag) {
    scanAttributes(token);
  }

  // Skip to the closing '>' (end tags may carry junk we ignore). A '/'
  // immediately before it marks the tag self-closing, matching the scalar
  // skip loop this scan replaced: the first '>' is at `closing`, so the only
  // place "/>" can occur before it is closing - 1.
  const std::size_t closing = util::findByte(input_, position_, '>');
  if (!isEndTag && closing < input_.size() && closing > position_ &&
      input_[closing - 1] == '/') {
    token.selfClosing = true;
  }
  position_ = closing >= input_.size() ? input_.size() : closing + 1;

  if (token.type == TokenType::StartTag && !token.selfClosing &&
      isRawTextTag(token.name)) {
    rawTextEndTag_ = token.name;
  }
}

void Tokenizer::scanAttributes(Token& token) {
  while (position_ < input_.size()) {
    while (position_ < input_.size() && isWhitespace(input_[position_])) {
      ++position_;
    }
    if (position_ >= input_.size()) return;
    const char ch = input_[position_];
    if (ch == '>') return;
    if (ch == '/') {
      if (position_ + 1 < input_.size() && input_[position_ + 1] == '>') {
        token.selfClosing = true;
        ++position_;  // leave '>' for scanTag
        return;
      }
      ++position_;  // stray '/': skip
      continue;
    }

    // Attribute name — built in place in the token's vector so the hot
    // path never moves strings; a bad or duplicate attribute just pops the
    // slot again.
    const std::size_t nameStart = position_;
    position_ = util::AttrNameScanner::find(input_, position_);
    token.attributes.emplace_back();
    dom::Attribute& attribute = token.attributes.back();
    appendLowerAscii(attribute.name,
                     input_.substr(nameStart, position_ - nameStart));
    if (attribute.name.empty()) {
      token.attributes.pop_back();
      ++position_;  // defensive: avoid infinite loop on weird input
      continue;
    }

    while (position_ < input_.size() && isWhitespace(input_[position_])) {
      ++position_;
    }
    if (position_ < input_.size() && input_[position_] == '=') {
      ++position_;
      while (position_ < input_.size() && isWhitespace(input_[position_])) {
        ++position_;
      }
      if (position_ < input_.size() &&
          (input_[position_] == '"' || input_[position_] == '\'')) {
        const char quote = input_[position_];
        ++position_;
        const std::size_t valueStart = position_;
        position_ = util::findByte(input_, position_, quote);
        decodeEntitiesInto(
            input_.substr(valueStart, position_ - valueStart),
            attribute.value);
        if (position_ < input_.size()) ++position_;  // closing quote
      } else {
        const std::size_t valueStart = position_;
        position_ = util::UnquotedValueScanner::find(input_, position_);
        decodeEntitiesInto(
            input_.substr(valueStart, position_ - valueStart),
            attribute.value);
      }
    }
    // First occurrence wins, as in browsers.
    const std::size_t earlier = token.attributes.size() - 1;
    for (std::size_t k = 0; k < earlier; ++k) {
      if (token.attributes[k].name == attribute.name) {
        token.attributes.pop_back();
        break;
      }
    }
  }
}

void Tokenizer::rawText(std::string_view tagName, Token& token) {
  // Consume everything up to "</tagName" (case-insensitive).
  closingPrefix_.assign("</");
  closingPrefix_.append(tagName);
  std::size_t search = position_;
  std::size_t contentEnd = input_.size();
  while (search < input_.size()) {
    const std::size_t lt = util::findByte(input_, search, '<');
    if (lt >= input_.size()) break;
    if (lt + closingPrefix_.size() <= input_.size() &&
        util::equalsIgnoreCase(input_.substr(lt, closingPrefix_.size()),
                               closingPrefix_)) {
      contentEnd = lt;
      break;
    }
    search = lt + 1;
  }

  token.type = TokenType::Text;
  const std::string_view content =
      input_.substr(position_, contentEnd - position_);
  // textarea/title content gets entity decoding; script/style does not.
  if (tagName == "textarea" || tagName == "title") {
    decodeEntitiesInto(content, token.text);
  } else {
    token.text.assign(content);
  }
  position_ = contentEnd;
}

}  // namespace cookiepicker::html
