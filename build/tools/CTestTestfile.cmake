# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/tools/cookiepicker" "demo")
set_tests_properties(cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_census "/root/repo/build/tools/cookiepicker" "census" "--sites" "30")
set_tests_properties(cli_census PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_audit "/root/repo/build/tools/cookiepicker" "audit" "--sites" "5" "--views" "4")
set_tests_properties(cli_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/cookiepicker")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
