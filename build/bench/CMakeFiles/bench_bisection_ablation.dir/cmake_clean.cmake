file(REMOVE_RECURSE
  "CMakeFiles/bench_bisection_ablation.dir/bench_bisection_ablation.cpp.o"
  "CMakeFiles/bench_bisection_ablation.dir/bench_bisection_ablation.cpp.o.d"
  "bench_bisection_ablation"
  "bench_bisection_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisection_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
