#include <gtest/gtest.h>

#include "core/decision.h"
#include "html/parser.h"

namespace cookiepicker::core {
namespace {

std::unique_ptr<dom::Node> page(const std::string& bodyHtml) {
  return html::parseHtml("<html><head><title>t</title></head><body>" +
                         bodyHtml + "</body></html>");
}

const std::string kRichPage =
    "<div id=page><nav><ul><li><a>Home</a></li><li><a>News</a></li></ul>"
    "</nav><main><section><h2>Alpha</h2><p>first paragraph text</p></section>"
    "<section><h2>Beta</h2><p>second paragraph text</p><ul><li>x</li>"
    "<li>y</li></ul></section></main><footer><p>contact us</p></footer>"
    "</div>";

const std::string kGuttedPage =
    "<div id=page><main><div class=signup><h2>Create account</h2>"
    "<form><input><input></form></div></main></div>";

TEST(Decision, IdenticalPagesNotAttributedToCookies) {
  auto regular = page(kRichPage);
  auto hidden = page(kRichPage);
  const DecisionResult result = decideCookieUsefulness(*regular, *hidden);
  EXPECT_DOUBLE_EQ(result.treeSim, 1.0);
  EXPECT_DOUBLE_EQ(result.textSim, 1.0);
  EXPECT_FALSE(result.causedByCookies);
}

TEST(Decision, GrossDifferenceAttributedToCookies) {
  auto regular = page(kRichPage);
  auto hidden = page(kGuttedPage);
  const DecisionResult result = decideCookieUsefulness(*regular, *hidden);
  EXPECT_LE(result.treeSim, 0.85);
  EXPECT_LE(result.textSim, 0.85);
  EXPECT_TRUE(result.causedByCookies);
}

TEST(Decision, BothMetricsMustAgreeInPaperMode) {
  // Structure differs sharply (empty divs reshuffled), but every text
  // string is identical → tree metric fires, text metric does not.
  auto regular = page(
      "<main><div><div><div></div></div></div><div><div></div></div>"
      "<p>only text</p></main>");
  auto hidden = page("<main><p>only text</p></main>");
  DecisionConfig config;
  const DecisionResult result =
      decideCookieUsefulness(*regular, *hidden, config);
  EXPECT_LE(result.treeSim, 0.85);
  EXPECT_GT(result.textSim, 0.85);
  EXPECT_FALSE(result.causedByCookies);

  config.mode = DecisionMode::TreeOnly;
  EXPECT_TRUE(decideCookieUsefulness(*regular, *hidden, config)
                  .causedByCookies);
  config.mode = DecisionMode::Either;
  EXPECT_TRUE(decideCookieUsefulness(*regular, *hidden, config)
                  .causedByCookies);
  config.mode = DecisionMode::TextOnly;
  EXPECT_FALSE(decideCookieUsefulness(*regular, *hidden, config)
                   .causedByCookies);
}

TEST(Decision, ThresholdBoundaryIsInclusive) {
  // Figure 5 uses <=: similarity exactly at the threshold counts as a
  // cookie-caused difference.
  auto regular = page(kRichPage);
  auto hidden = page(kGuttedPage);
  DecisionConfig config;
  const DecisionResult probe = decideCookieUsefulness(*regular, *hidden);
  config.treeThreshold = probe.treeSim;
  config.textThreshold = probe.textSim;
  EXPECT_TRUE(
      decideCookieUsefulness(*regular, *hidden, config).causedByCookies);
}

TEST(Decision, LooseThresholdsFlagEverything) {
  auto regular = page(kRichPage);
  auto hidden = page(kRichPage);
  DecisionConfig config;
  config.treeThreshold = 1.0;
  config.textThreshold = 1.0;
  // Even identical pages sit at 1.0 <= 1.0.
  EXPECT_TRUE(
      decideCookieUsefulness(*regular, *hidden, config).causedByCookies);
}

TEST(Decision, TightThresholdsFlagNothing) {
  auto regular = page(kRichPage);
  auto hidden = page(kGuttedPage);
  DecisionConfig config;
  config.treeThreshold = 0.0;
  config.textThreshold = 0.0;
  const DecisionResult result =
      decideCookieUsefulness(*regular, *hidden, config);
  EXPECT_FALSE(result.causedByCookies);
}

TEST(Decision, ReportsDetectionTime) {
  auto regular = page(kRichPage);
  auto hidden = page(kRichPage);
  const DecisionResult result = decideCookieUsefulness(*regular, *hidden);
  EXPECT_GE(result.detectionTimeMs, 0.0);
  EXPECT_LT(result.detectionTimeMs, 1000.0);  // sanity: well under a second
}

TEST(Decision, LevelParameterControlsSensitivity) {
  // Deep-only difference: visible with a deep level cut, invisible at l=3.
  auto regular = page(
      "<main><section><div><div><div><div><ul><li>a</li><li>b</li></ul>"
      "</div></div></div></div></section></main>");
  auto hidden = page(
      "<main><section><div><div><div><div><table><tr><td>x</td></tr>"
      "</table></div></div></div></div></section></main>");
  DecisionConfig shallow;
  shallow.maxLevel = 3;
  EXPECT_DOUBLE_EQ(
      decideCookieUsefulness(*regular, *hidden, shallow).treeSim, 1.0);
  DecisionConfig deep;
  deep.maxLevel = 10;
  EXPECT_LT(decideCookieUsefulness(*regular, *hidden, deep).treeSim, 1.0);
}

}  // namespace
}  // namespace cookiepicker::core
