// cookiepicker — command-line driver for the library.
//
//   cookiepicker demo                          quickstart on one site
//   cookiepicker audit  [--sites N] [--views V] [--seed S] [--workers W]
//                                              census + CookiePicker summary
//                                              (W >= 1 runs the worker fleet)
//   cookiepicker census [--sites N] [--seed S] cookie-usage measurement only
//   cookiepicker table1 | table2               paper-table reproductions
//   cookiepicker record --out FILE [--seed S]  capture a campaign trace
//   cookiepicker replay --in FILE  [--seed S]  rerun a captured trace
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "browser/browser.h"
#include "core/cookie_picker.h"
#include "fleet/fleet.h"
#include "measure/census.h"
#include "net/network.h"
#include "net/trace.h"
#include "server/generator.h"
#include "util/clock.h"
#include "util/stats.h"

namespace {

using namespace cookiepicker;

struct Options {
  int sites = 30;
  int views = 10;
  int workers = 0;  // 0 = classic single-session audit; >= 1 = fleet
  std::uint64_t seed = 2007;
  std::string inFile;
  std::string outFile;
};

Options parseOptions(int argc, char** argv, int firstFlag) {
  Options options;
  for (int i = firstFlag; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (flag == "--sites") {
      options.sites = std::max(1, std::atoi(next().c_str()));
    } else if (flag == "--views") {
      options.views = std::max(1, std::atoi(next().c_str()));
    } else if (flag == "--workers") {
      options.workers = std::max(1, std::atoi(next().c_str()));
    } else if (flag == "--seed") {
      options.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--in") {
      options.inFile = next();
    } else if (flag == "--out") {
      options.outFile = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
    }
  }
  return options;
}

int runDemo() {
  util::SimClock clock;
  net::Network network(1);
  server::SiteSpec spec = server::makeGenericSpec("Demo", "demo.example", 42);
  spec.containerTrackers = 0;
  spec.pixelTrackers = 2;
  network.registerHost(spec.domain, server::buildSite(spec, clock));
  browser::Browser browser(network, clock);
  core::CookiePicker picker(browser);
  for (int i = 0; i < 8; ++i) {
    picker.browse("http://demo.example/page" + std::to_string(i % 6 + 1));
  }
  std::printf("verdicts for %s:\n", spec.domain.c_str());
  for (const cookies::CookieRecord* record :
       browser.jar().persistentCookiesForHost(spec.domain)) {
    std::printf("  %-10s %s\n", record->key.name.c_str(),
                record->useful ? "USEFUL" : "useless");
  }
  return 0;
}

int runCensus(const Options& options) {
  const auto roster = server::measurementRoster(options.sites, options.seed);
  const measure::CensusReport report = measure::runCensus(roster);
  std::printf("sites: %d, cookies: %d (%d persistent)\n",
              report.sitesVisited, report.totalCookies(),
              report.persistentCookies());
  std::printf("persistent >= 1 year: %.1f%%\n",
              100.0 * report.persistentFractionWithLifetimeAtLeast(
                          365LL * 86400));
  for (const auto& [label, count, fraction] : report.lifetimeBuckets()) {
    std::printf("  %-18s %5d  %5.1f%%\n", label.c_str(), count,
                100.0 * fraction);
  }
  return 0;
}

// Parallel audit: per-host sessions fanned out over a worker fleet. Results
// are byte-identical for any --workers value (per-host RNG streams and
// session-local clocks), so more workers only changes wall time.
int runFleetAudit(const Options& options) {
  util::SimClock serverClock;
  net::Network network(options.seed);
  const auto roster = server::measurementRoster(options.sites, options.seed);
  server::registerRoster(network, serverClock, roster);

  fleet::FleetConfig config;
  config.workers = options.workers;
  config.viewsPerHost = options.views;
  config.seed = options.seed;
  config.picker.autoEnforce = true;
  fleet::TrainingFleet fleet(network, config);
  const fleet::FleetReport report = fleet.run(roster);

  int removed = 0;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    removed += roster[i].totalPersistent() -
               report.hosts[i].report.persistentCookies;
  }
  std::printf("sites audited        : %d (%d views each, %d workers)\n",
              options.sites, options.views, report.workers);
  std::printf("cookies kept useful  : %d\n", report.totalMarkedUseful());
  std::printf("trackers removed     : %d\n", removed);
  std::printf("pages visited        : %llu (%.1f pages/s)\n",
              static_cast<unsigned long long>(report.pagesVisited),
              report.pagesPerSecond);
  std::printf("hidden requests      : %llu (%.1f req/s)\n",
              static_cast<unsigned long long>(report.hiddenRequests),
              report.hiddenRequestsPerSecond);
  std::printf("worker utilization   : %.0f%%\n",
              100.0 * report.workerUtilization);
  return 0;
}

int runAudit(const Options& options) {
  if (options.workers >= 1) return runFleetAudit(options);
  util::SimClock clock;
  net::Network network(options.seed);
  browser::Browser browser(network, clock);
  core::CookiePickerConfig config;
  config.autoEnforce = true;
  core::CookiePicker picker(browser, config);
  const auto roster = server::measurementRoster(options.sites, options.seed);
  server::registerRoster(network, clock, roster);

  int usefulKept = 0;
  int removed = 0;
  for (const server::SiteSpec& spec : roster) {
    for (int view = 0; view < options.views; ++view) {
      picker.browse("http://" + spec.domain + "/page" +
                    std::to_string(view % spec.pageCount));
    }
    const core::HostReport report = picker.report(spec.domain);
    usefulKept += report.markedUseful;
    removed += spec.totalPersistent() - report.persistentCookies;
  }
  std::printf("sites audited        : %d (%d views each)\n", options.sites,
              options.views);
  std::printf("cookies kept useful  : %d\n", usefulKept);
  std::printf("trackers removed     : %d\n", removed);
  std::printf("user interruptions   : %d\n",
              picker.recovery().recoveryCount());
  return 0;
}

// Shared by record/replay so both passes issue the identical workload.
template <typename MakeHandler>
std::string runCampaignWith(const Options& options,
                            MakeHandler&& makeHandler,
                            std::string* traceOut) {
  util::SimClock clock;
  net::Network network(options.seed);
  server::SiteSpec spec =
      server::makeGenericSpec("Cli", "cli.example", options.seed);
  auto handler = makeHandler(spec, clock);
  network.registerHost(spec.domain, handler.first);
  browser::Browser browser(network, clock);
  core::CookiePicker picker(browser);
  for (int view = 0; view < options.views; ++view) {
    picker.browse("http://cli.example/page" +
                  std::to_string(view % spec.pageCount));
  }
  if (traceOut != nullptr) *traceOut = handler.second();
  return browser.jar().serialize();
}

int runRecord(const Options& options) {
  if (options.outFile.empty()) {
    std::fprintf(stderr, "record requires --out FILE\n");
    return 2;
  }
  std::string traceText;
  const std::string jar = runCampaignWith(
      options,
      [](const server::SiteSpec& spec, util::SimClock& clock) {
        auto recorder = std::make_shared<net::RecordingHandler>(
            server::buildSite(spec, clock));
        return std::make_pair(
            std::static_pointer_cast<net::HttpHandler>(recorder),
            [recorder]() { return recorder->serialize(); });
      },
      &traceText);
  std::ofstream out(options.outFile, std::ios::binary);
  out << traceText;
  std::printf("recorded trace to %s\njar state:\n%s", options.outFile.c_str(),
              jar.c_str());
  return 0;
}

int runReplay(const Options& options) {
  if (options.inFile.empty()) {
    std::fprintf(stderr, "replay requires --in FILE\n");
    return 2;
  }
  std::ifstream in(options.inFile, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", options.inFile.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string jar = runCampaignWith(
      options,
      [&buffer](const server::SiteSpec&, util::SimClock&) {
        auto replay = std::make_shared<net::ReplayHandler>(
            net::parseTrace(buffer.str()));
        return std::make_pair(
            std::static_pointer_cast<net::HttpHandler>(replay),
            []() { return std::string(); });
      },
      nullptr);
  std::printf("replayed %s\njar state:\n%s", options.inFile.c_str(),
              jar.c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: cookiepicker <demo|audit|census|record|replay> [flags]\n"
      "  demo                              one-site walkthrough\n"
      "  audit  [--sites N] [--views V] [--seed S] [--workers W]\n"
      "         (--workers fans per-host sessions out over W threads;\n"
      "          results are identical for any W)\n"
      "  census [--sites N] [--seed S]\n"
      "  record --out FILE [--views V] [--seed S]\n"
      "  replay --in FILE  [--views V] [--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Options options = parseOptions(argc, argv, 2);
  if (command == "demo") return runDemo();
  if (command == "census") return runCensus(options);
  if (command == "audit") return runAudit(options);
  if (command == "record") return runRecord(options);
  if (command == "replay") return runReplay(options);
  return usage();
}
