#include "serve/timer_wheel.h"

#include <algorithm>
#include <cmath>

namespace cookiepicker::serve {

namespace {
std::uint64_t tickFor(double ms) {
  if (ms <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::ceil(ms / TimerWheel::kTickMs));
}
}  // namespace

TimerWheel::TimerWheel(double nowMs)
    : nowMs_(nowMs), currentTick_(tickFor(nowMs)) {}

TimerId TimerWheel::schedule(double delayMs, std::function<void()> callback) {
  const double delay = std::max(0.0, delayMs);
  std::uint64_t deadlineTick = tickFor(nowMs_ + delay);
  // Never due "now": advanceTo() has already swept the current tick.
  deadlineTick = std::max(deadlineTick, currentTick_ + 1);
  const TimerId id = nextId_++;
  slots_[deadlineTick & (kSlots - 1)].push_back(
      Entry{id, deadlineTick, std::move(callback)});
  ++live_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  if (id == kInvalidTimer) return false;
  for (auto& slot : slots_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --live_;
        return true;
      }
    }
  }
  return false;
}

int TimerWheel::advanceTo(double nowMs) {
  if (nowMs < nowMs_) {
    nowMs_ = nowMs;  // monotonic clock hiccup; never rewind ticks
    return 0;
  }
  nowMs_ = nowMs;
  const std::uint64_t targetTick = tickFor(nowMs);
  int fired = 0;
  std::vector<Entry> due;
  while (currentTick_ < targetTick) {
    if (live_ == 0) {
      // Nothing can fire; skip the idle gap in one step.
      currentTick_ = targetTick;
      break;
    }
    ++currentTick_;
    auto& slot = slots_[currentTick_ & (kSlots - 1)];
    if (slot.empty()) continue;
    due.clear();
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].deadlineTick <= currentTick_) {
        due.push_back(std::move(slot[i]));
        slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
        --live_;
      } else {
        ++i;
      }
    }
    for (Entry& entry : due) {
      ++fired;
      entry.callback();
    }
  }
  return fired;
}

double TimerWheel::msUntilNext(double nowMs) const {
  if (live_ == 0) return -1.0;
  std::uint64_t minTick = ~0ull;
  for (const auto& slot : slots_) {
    for (const Entry& entry : slot) {
      minTick = std::min(minTick, entry.deadlineTick);
    }
  }
  const double deadlineMs = static_cast<double>(minTick) * kTickMs;
  return std::max(0.0, deadlineMs - nowMs);
}

}  // namespace cookiepicker::serve
