// Flattened DOM snapshot — the cache-friendly substrate of the detection
// hot path.
//
// A TreeSnapshot is a one-pass preorder flattening of a parsed document
// into parallel arrays: interned name symbols, subtree extents, child
// spans, depth, and the per-node predicates RSTM and CVCE would otherwise
// recompute from strings on every comparison (visibility, script/option
// tags, ad-container class/id heuristic, text noise filters, a 64-bit
// FNV-1a hash of each text node's collapsed content). Built exactly once
// per document — at parse time, cached on the PageView — and then read by
// every detection step over that document with integer compares and zero
// further allocation.
//
// Two producers fill the arrays: the reference constructor below, which
// flattens an existing dom::Node tree, and html::StreamingSnapshotBuilder,
// which emits the same rows directly from the token stream without ever
// materializing nodes. Both funnel through finish() so the derived child
// spans and comparison root are computed by one shared pass; the
// differential fuzz suite asserts the raw arrays are byte-identical.
//
// The snapshot is immutable after construction and safe to share across
// threads; the interners it writes through are globally synchronized.
#pragma once

#include <cstdint>
#include <vector>

#include "dom/interner.h"
#include "dom/node.h"
#include "provenance/taint.h"

namespace cookiepicker::html {
class StreamingSnapshotBuilder;
}  // namespace cookiepicker::html

namespace cookiepicker::dom {

class TreeSnapshot {
 public:
  // Flattens the whole subtree under `root` (typically the parsed document
  // node). Node indices below are preorder positions, root at 0.
  explicit TreeSnapshot(const Node& root);

  // Same flattening, additionally stamping each row with the effective
  // taint label-set of its node (own labels OR ancestors'). Only meaningful
  // for server-side trees whose nodes carry taint; the streaming builder
  // produces identical stamps from the serialized ProvenanceMap, which the
  // provenance differential suite pins.
  TreeSnapshot(const Node& root, bool stampTaint);

  std::uint32_t nodeCount() const {
    return static_cast<std::uint32_t>(symbols_.size());
  }

  // The paper's comparison root: first preorder <body> element, else 0.
  std::uint32_t comparisonRootIndex() const { return comparisonRoot_; }

  // --- per-node structure -------------------------------------------------
  SymbolId symbol(std::uint32_t i) const { return symbols_[i]; }
  // One past the last preorder index of i's subtree.
  std::uint32_t subtreeEnd(std::uint32_t i) const { return subtreeEnd_[i]; }
  // Depth below the snapshot root (root = 0).
  std::int32_t level(std::uint32_t i) const { return levels_[i]; }
  std::uint32_t childCount(std::uint32_t i) const {
    return childOffset_[i + 1] - childOffset_[i];
  }
  // Preorder index of i's k-th child, O(1).
  std::uint32_t child(std::uint32_t i, std::uint32_t k) const {
    return childIndex_[childOffset_[i] + k];
  }

  // --- per-node predicates (precomputed) ----------------------------------
  bool isElement(std::uint32_t i) const { return flag(i, kElement); }
  bool isText(std::uint32_t i) const { return flag(i, kText); }
  bool isComment(std::uint32_t i) const { return flag(i, kComment); }
  // core::isVisibleStructuralNode, precomputed.
  bool visibleStructural(std::uint32_t i) const {
    return flag(i, kVisibleStructural);
  }
  // Element tag in {script, style, noscript}.
  bool isScriptish(std::uint32_t i) const { return flag(i, kScriptish); }
  bool isOption(std::uint32_t i) const { return flag(i, kOption); }
  // Element whose class/id carries an ad marker token.
  bool isAdContainer(std::uint32_t i) const { return flag(i, kAdContainer); }

  // --- text-node content, canonicalized at build time ---------------------
  // All three refer to the whitespace-collapsed text.
  bool textNonEmpty(std::uint32_t i) const { return flag(i, kTextNonEmpty); }
  bool textHasAlphanumeric(std::uint32_t i) const {
    return flag(i, kTextHasAlnum);
  }
  bool textLooksLikeDateTime(std::uint32_t i) const {
    return flag(i, kTextDateLike);
  }
  // FNV-1a 64 of the collapsed text (0 for non-text nodes).
  std::uint64_t textHash(std::uint32_t i) const { return textHashes_[i]; }

  // --- taint provenance (attribution tier) --------------------------------
  // Per-row interned label-set stamps. Present only when a producer was
  // given provenance (the vector stays empty otherwise, so ordinary
  // snapshots pay nothing); rows outside every tainted range stamp 0.
  bool hasProvenance() const { return !taintSets_.empty(); }
  provenance::TaintSetId taintSet(std::uint32_t i) const {
    return taintSets_.empty() ? 0 : taintSets_[i];
  }

  // The raw flag word for node i — exposed so the differential tests can
  // compare the streaming and reference builds bit for bit rather than
  // predicate by predicate.
  std::uint16_t rawFlags(std::uint32_t i) const { return flags_[i]; }

  // Rough heap footprint, for the benchmark's bytes accounting.
  std::size_t memoryBytes() const;

  enum Flag : std::uint16_t {
    kElement = 1U << 0,
    kText = 1U << 1,
    kComment = 1U << 2,
    kVisibleStructural = 1U << 3,
    kScriptish = 1U << 4,
    kOption = 1U << 5,
    kAdContainer = 1U << 6,
    kTextNonEmpty = 1U << 7,
    kTextHasAlnum = 1U << 8,
    kTextDateLike = 1U << 9,
  };

 private:
  friend class ::cookiepicker::html::StreamingSnapshotBuilder;

  // Empty snapshot for the streaming builder to fill row by row.
  TreeSnapshot() = default;

  bool flag(std::uint32_t i, Flag bit) const {
    return (flags_[i] & bit) != 0;
  }

  std::uint32_t flatten(const Node& node, std::int32_t level,
                        std::uint32_t inheritedTaint);

  // Derives child spans and the comparison root from the preorder rows.
  // Shared by both producers — any row-level divergence between them shows
  // up verbatim in the derived arrays instead of being masked by a second
  // implementation of this pass.
  void finish();

  std::vector<SymbolId> symbols_;
  std::vector<std::uint32_t> subtreeEnd_;
  std::vector<std::int32_t> levels_;
  std::vector<std::uint16_t> flags_;
  std::vector<std::uint64_t> textHashes_;
  // Children of node i are childIndex_[childOffset_[i] .. childOffset_[i+1]).
  std::vector<std::uint32_t> childOffset_;
  std::vector<std::uint32_t> childIndex_;
  std::vector<provenance::TaintSetId> taintSets_;
  std::uint32_t comparisonRoot_ = 0;
  bool stampTaint_ = false;
};

}  // namespace cookiepicker::dom
