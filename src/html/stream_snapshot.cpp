#include "html/stream_snapshot.h"

#include <algorithm>

#include "util/rng.h"
#include "util/strings.h"

namespace cookiepicker::html {

namespace {

using dom::TreeSnapshot;

// The tree builder's whitespace-only test (parser.cpp) — '\v' excluded.
bool isWhitespaceOnlyText(std::string_view text) {
  return std::all_of(text.begin(), text.end(), [](char ch) {
    return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\f';
  });
}

}  // namespace

StreamingSnapshotBuilder::StreamingSnapshotBuilder() {
  dom::SymbolInterner& interner = dom::globalSymbolInterner();
  documentSymbol_ = interner.intern("#document");
  textSymbol_ = interner.intern("#text");
  commentSymbol_ = interner.intern("#comment");
  htmlSymbol_ = interner.intern("html");
  headSymbol_ = interner.intern("head");
  bodySymbol_ = interner.intern("body");
}

dom::SymbolId StreamingSnapshotBuilder::localSymbol(const std::string& name) {
  // Cheap slot hash: mixing length with the first and last byte separates
  // the real-world tag vocabulary (div/span/td/tr/li/a/p/...) with almost
  // no collisions; a wrong guess only costs one global intern.
  std::size_t slot = name.size() * 131;
  if (!name.empty()) {
    slot += static_cast<unsigned char>(name.front()) * 31 +
            static_cast<unsigned char>(name.back());
  }
  slot &= kSymbolCacheSize - 1;
  SymbolSlot& entry = symbolCache_[slot];
  if (entry.used && entry.name == name) return entry.symbol;
  const dom::SymbolId symbol = dom::globalSymbolInterner().intern(name);
  entry.used = true;
  entry.name = name;
  entry.symbol = symbol;
  return symbol;
}

const StreamingSnapshotBuilder::TagInfo& StreamingSnapshotBuilder::tagInfo(
    dom::SymbolId symbol, const std::string& name) {
  if (symbol >= infoBySymbol_.size()) {
    infoBySymbol_.resize(static_cast<std::size_t>(symbol) + 1);
  }
  TagInfo& info = infoBySymbol_[symbol];
  if (info.known) return info;
  info.known = true;
  info.isVoid = isVoidElement(name);
  info.headPlacement = isHeadContentTag(name) || name == "script";
  info.headRawText = name == "title" || name == "style" || name == "script";
  info.rawTextTag = isRawTextTag(name);
  info.preformatted = name == "pre" || name == "textarea";
  info.scriptish = name == "script" || name == "style" || name == "noscript";
  info.isOption = name == "option";
  info.nonVisual = dom::isNonVisualTag(name);
  if (name == "html") {
    info.structural = 1;
  } else if (name == "head") {
    info.structural = 2;
  } else if (name == "body") {
    info.structural = 3;
  }
  if (name == "img" || name == "script" || name == "iframe" ||
      name == "embed") {
    info.resource = 1;
  } else if (name == "link") {
    info.resource = 2;
  } else if (name == "base") {
    info.resource = 3;
  }
  if (name == "p") {
    info.openClass = kClassP;
  } else if (name == "li") {
    info.openClass = kClassLi;
  } else if (name == "dt" || name == "dd") {
    info.openClass = kClassDtDd;
  } else if (name == "option") {
    info.openClass = kClassOption;
  } else if (name == "td" || name == "th") {
    info.openClass = kClassCell;
  } else if (name == "tr") {
    info.openClass = kClassRow;
  } else if (name == "thead" || name == "tbody" || name == "tfoot") {
    info.openClass = kClassSection;
  }
  if (isBlockLevelTag(name)) info.closeMask |= kClassP;
  if (name == "li") info.closeMask |= kClassLi;
  if (name == "dt" || name == "dd") info.closeMask |= kClassDtDd;
  if (name == "option" || name == "optgroup") info.closeMask |= kClassOption;
  if (name == "td" || name == "th") info.closeMask |= kClassCell;
  if (name == "tr") info.closeMask |= kClassCell | kClassRow;
  if (name == "tbody" || name == "thead" || name == "tfoot") {
    info.closeMask |= kClassCell | kClassRow | kClassSection;
  }
  return info;
}

std::uint32_t StreamingSnapshotBuilder::rowCount() const {
  return static_cast<std::uint32_t>(snap_->symbols_.size());
}

std::uint32_t StreamingSnapshotBuilder::emitRow(dom::SymbolId symbol,
                                                std::int32_t level,
                                                std::uint16_t flags,
                                                provenance::TaintSetId taint) {
  const std::uint32_t row = rowCount();
  snap_->symbols_.push_back(symbol);
  // Leaf extent; rows that acquire children (open elements, the structural
  // skeleton) are re-patched when they close.
  snap_->subtreeEnd_.push_back(row + 1);
  snap_->levels_.push_back(level);
  snap_->flags_.push_back(flags);
  snap_->textHashes_.push_back(0);
  if (prov_ != nullptr) snap_->taintSets_.push_back(taint);
  return row;
}

provenance::TaintSetId StreamingSnapshotBuilder::tokenTaint() const {
  if (prov_ == nullptr) return 0;
  return prov_->labelsAt(static_cast<std::uint32_t>(token_.sourceStart));
}

void StreamingSnapshotBuilder::resetFrame(Frame& frame) {
  frame.row = -1;
  frame.lastTextSlot = -1;
  frame.hasClass = false;
  frame.hasId = false;
  frame.classValue.clear();
  frame.idValue.clear();
}

StreamParseResult StreamingSnapshotBuilder::build(
    std::string_view htmlText, const ParseOptions& options,
    const provenance::ProvenanceMap* provenance) {
  StreamParseResult result;
  auto snapshot = std::shared_ptr<TreeSnapshot>(new TreeSnapshot());
  snap_ = snapshot.get();
  page_ = &result.page;
  options_ = &options;
  prov_ = provenance != nullptr && !provenance->empty() ? provenance : nullptr;
  resetFrame(document_);
  resetFrame(html_);
  resetFrame(head_);
  resetFrame(body_);
  open_.clear();
  preformattedDepth_ = 0;
  sawBase_ = false;
  textRowCount_ = 0;

  // Dense markup runs a few bytes per node; a light reserve skips the first
  // few geometric regrowths without overcommitting on text-heavy pages.
  const std::size_t rowGuess = htmlText.size() / 16 + 8;
  snap_->symbols_.reserve(rowGuess);
  snap_->subtreeEnd_.reserve(rowGuess);
  snap_->levels_.reserve(rowGuess);
  snap_->flags_.reserve(rowGuess);
  snap_->textHashes_.reserve(rowGuess);
  if (prov_ != nullptr) snap_->taintSets_.reserve(rowGuess);

  document_.row =
      emitRow(documentSymbol_, 0, TreeSnapshot::kVisibleStructural);

  Tokenizer tokenizer(htmlText);
  while (tokenizer.next(token_)) {
    switch (token_.type) {
      case TokenType::Doctype:
        processDoctype();
        break;
      case TokenType::Comment:
        processComment();
        break;
      case TokenType::Text:
        processText();
        break;
      case TokenType::StartTag:
        processStartTag();
        break;
      case TokenType::EndTag:
        processEndTag();
        break;
      case TokenType::EndOfFile:
        break;
    }
  }

  // Mirror TreeBuilder::build's trailing ensureBody (the skeleton exists
  // even for empty input); anything still open extends to the last row.
  ensureBody();
  while (!open_.empty()) popOpen();
  const std::uint32_t n = rowCount();
  snap_->subtreeEnd_[static_cast<std::size_t>(document_.row)] = n;
  snap_->subtreeEnd_[static_cast<std::size_t>(html_.row)] = n;
  snap_->subtreeEnd_[static_cast<std::size_t>(body_.row)] = n;
  // head's extent was fixed when body was created.

  finalizeTextRows();
  finalizeStructuralFlags(html_);
  finalizeStructuralFlags(head_);
  finalizeStructuralFlags(body_);
  snap_->finish();

  result.snapshot = std::move(snapshot);
  snap_ = nullptr;
  page_ = nullptr;
  options_ = nullptr;
  prov_ = nullptr;
  return result;
}

void StreamingSnapshotBuilder::processDoctype() {
  if (html_.row != -1) return;  // doctype after <html>: dropped
  document_.lastTextSlot = -1;
  emitRow(localSymbol(token_.name), 1, 0, tokenTaint());
}

void StreamingSnapshotBuilder::processComment() {
  // TreeBuilder's insertionPoint chain: open stack top, else body, else
  // head, else html, else the document.
  std::int32_t level = 0;
  if (!open_.empty()) {
    Open& top = open_.back();
    top.lastTextSlot = -1;
    level = top.level + 1;
  } else if (body_.row != -1) {
    body_.lastTextSlot = -1;
    level = 3;
  } else if (head_.row != -1) {
    head_.lastTextSlot = -1;
    level = 3;
  } else if (html_.row != -1) {
    html_.lastTextSlot = -1;
    level = 2;
  } else {
    document_.lastTextSlot = -1;
    level = 1;
  }
  emitRow(commentSymbol_, level, TreeSnapshot::kComment, tokenTaint());
}

void StreamingSnapshotBuilder::processText() {
  const std::string& text = token_.text;
  if (text.empty()) return;
  if (isWhitespaceOnlyText(text)) {
    if (body_.row == -1) return;  // whitespace before body: always dropped
    const bool insideRaw = !open_.empty() && open_.back().rawTextTag;
    if (options_->dropInterElementWhitespace && !insideRaw &&
        preformattedDepth_ == 0) {
      return;
    }
  }
  const bool insideHeadRaw = !open_.empty() && open_.back().headRawText;
  if (body_.row == -1 && !insideHeadRaw) ensureBody();
  if (!open_.empty()) {
    Open& top = open_.back();
    appendTextTo(top.lastTextSlot, top.level);
  } else {
    appendTextTo(body_.lastTextSlot, 2);
  }
}

void StreamingSnapshotBuilder::appendTextTo(std::int64_t& lastTextSlot,
                                            std::int32_t parentLevel) {
  if (lastTextSlot >= 0) {
    // Adjacent text tokens merge into one DOM text node; the row already
    // exists, only its pending content grows.
    textRows_[static_cast<std::size_t>(lastTextSlot)].second.append(
        token_.text);
    return;
  }
  const std::uint32_t row =
      emitRow(textSymbol_, parentLevel + 1, TreeSnapshot::kText, tokenTaint());
  if (textRowCount_ < textRows_.size()) {
    auto& slot = textRows_[textRowCount_];
    slot.first = row;
    slot.second.assign(token_.text);
  } else {
    textRows_.emplace_back(row, token_.text);
  }
  lastTextSlot = static_cast<std::int64_t>(textRowCount_++);
}

void StreamingSnapshotBuilder::processStartTag() {
  const dom::SymbolId symbol = localSymbol(token_.name);
  const TagInfo& info = tagInfo(symbol, token_.name);

  if (info.structural == 1) {
    ensureHtml();
    mergeStructuralAttributes(html_);
    return;
  }
  if (info.structural == 2) {
    ensureHead();
    mergeStructuralAttributes(head_);
    return;
  }
  if (info.structural == 3) {
    ensureBody();
    mergeStructuralAttributes(body_);
    return;
  }

  std::uint16_t flags = TreeSnapshot::kElement;
  if (info.scriptish) flags |= TreeSnapshot::kScriptish;
  if (info.isOption) flags |= TreeSnapshot::kOption;
  if (!info.nonVisual) flags |= TreeSnapshot::kVisibleStructural;
  for (const dom::Attribute& attribute : token_.attributes) {
    if ((attribute.name == "class" || attribute.name == "id") &&
        util::hasAdSignalToken(attribute.value)) {
      flags |= TreeSnapshot::kAdContainer;
      break;
    }
  }

  if (body_.row == -1 && open_.empty() && info.headPlacement) {
    ensureHead();
    head_.lastTextSlot = -1;
    const std::uint32_t row = emitRow(symbol, 3, flags, tokenTaint());
    recordReferences(info);
    if (!info.isVoid && !token_.selfClosing) {
      pushOpen(row, symbol, info, 3);
    }
    return;
  }

  ensureBody();
  while (!open_.empty() && (info.closeMask & open_.back().openClass) != 0) {
    popOpen();
  }
  std::int32_t level;
  if (!open_.empty()) {
    open_.back().lastTextSlot = -1;
    level = open_.back().level + 1;
  } else {
    body_.lastTextSlot = -1;
    level = 3;
  }
  const std::uint32_t row = emitRow(symbol, level, flags, tokenTaint());
  recordReferences(info);
  if (!info.isVoid && !token_.selfClosing) {
    pushOpen(row, symbol, info, level);
  }
}

void StreamingSnapshotBuilder::processEndTag() {
  const dom::SymbolId symbol = localSymbol(token_.name);
  if (symbol == htmlSymbol_ || symbol == bodySymbol_) return;
  if (symbol == headSymbol_) {
    // head_/body_ never sit on the open stack, so "pop down to them" pops
    // everything — exactly TreeBuilder's </head> handling.
    while (!open_.empty()) popOpen();
    return;
  }
  for (std::size_t i = open_.size(); i > 0; --i) {
    if (open_[i - 1].symbol == symbol) {
      while (open_.size() >= i) popOpen();
      return;
    }
  }
  // No match: stray end tag, ignored.
}

void StreamingSnapshotBuilder::recordReferences(const TagInfo& info) {
  if (info.resource == 0) return;
  if (info.resource == 3) {  // <base>: only the first element counts
    if (sawBase_) return;
    sawBase_ = true;
    for (const dom::Attribute& attribute : token_.attributes) {
      if (attribute.name == "href") {
        if (!attribute.value.empty()) page_->baseHref = attribute.value;
        return;
      }
    }
    return;
  }
  if (info.resource == 1) {  // img/script/iframe/embed
    for (const dom::Attribute& attribute : token_.attributes) {
      if (attribute.name == "src") {
        if (!attribute.value.empty()) {
          page_->subresourceRefs.push_back(attribute.value);
        }
        return;
      }
    }
    return;
  }
  // <link rel~=stylesheet href=...>
  const std::string* rel = nullptr;
  const std::string* href = nullptr;
  for (const dom::Attribute& attribute : token_.attributes) {
    if (attribute.name == "rel") {
      rel = &attribute.value;
    } else if (attribute.name == "href") {
      href = &attribute.value;
    }
  }
  if (rel != nullptr && util::containsIgnoreCase(*rel, "stylesheet") &&
      href != nullptr && !href->empty()) {
    page_->subresourceRefs.push_back(*href);
  }
}

void StreamingSnapshotBuilder::mergeStructuralAttributes(Frame& frame) {
  // mergeAttributes semantics: across repeated <html>/<head>/<body> tags
  // the first occurrence of each attribute wins. Only class/id feed the
  // ad-container flag, so only they are tracked.
  for (const dom::Attribute& attribute : token_.attributes) {
    if (attribute.name == "class") {
      if (!frame.hasClass) {
        frame.hasClass = true;
        frame.classValue = attribute.value;
      }
    } else if (attribute.name == "id") {
      if (!frame.hasId) {
        frame.hasId = true;
        frame.idValue = attribute.value;
      }
    }
  }
}

void StreamingSnapshotBuilder::finalizeStructuralFlags(const Frame& frame) {
  if (frame.row == -1) return;
  if ((frame.hasClass && util::hasAdSignalToken(frame.classValue)) ||
      (frame.hasId && util::hasAdSignalToken(frame.idValue))) {
    snap_->flags_[static_cast<std::size_t>(frame.row)] |=
        TreeSnapshot::kAdContainer;
  }
}

void StreamingSnapshotBuilder::finalizeTextRows() {
  for (std::size_t slot = 0; slot < textRowCount_; ++slot) {
    const std::uint32_t row = textRows_[slot].first;
    util::collapseWhitespaceInto(textRows_[slot].second, collapseScratch_);
    if (collapseScratch_.empty()) continue;
    std::uint16_t flags = snap_->flags_[row] | TreeSnapshot::kTextNonEmpty;
    if (util::hasAlphanumeric(collapseScratch_)) {
      flags |= TreeSnapshot::kTextHasAlnum;
    }
    if (util::looksLikeDateOrTime(collapseScratch_)) {
      flags |= TreeSnapshot::kTextDateLike;
    }
    snap_->flags_[row] = flags;
    snap_->textHashes_[row] = util::fnv1a64(collapseScratch_);
  }
}

void StreamingSnapshotBuilder::ensureHtml() {
  if (html_.row != -1) return;
  document_.lastTextSlot = -1;
  html_.row = emitRow(
      htmlSymbol_, 1,
      TreeSnapshot::kElement | TreeSnapshot::kVisibleStructural);
}

void StreamingSnapshotBuilder::ensureHead() {
  ensureHtml();
  if (head_.row != -1) return;
  html_.lastTextSlot = -1;
  // <head> is a non-visual tag: kElement only.
  head_.row = emitRow(headSymbol_, 2, TreeSnapshot::kElement);
}

void StreamingSnapshotBuilder::ensureBody() {
  ensureHead();
  if (body_.row != -1) return;
  // Anything still open belonged to head content; it closes here, before
  // the body row exists, so head's extent ends exactly at the body row.
  while (!open_.empty()) popOpen();
  snap_->subtreeEnd_[static_cast<std::size_t>(head_.row)] = rowCount();
  html_.lastTextSlot = -1;
  body_.row = emitRow(
      bodySymbol_, 2,
      TreeSnapshot::kElement | TreeSnapshot::kVisibleStructural);
}

void StreamingSnapshotBuilder::pushOpen(std::uint32_t row,
                                        dom::SymbolId symbol,
                                        const TagInfo& info,
                                        std::int32_t level) {
  if (info.preformatted) ++preformattedDepth_;
  Open open;
  open.row = row;
  open.symbol = symbol;
  open.level = level;
  open.openClass = info.openClass;
  open.rawTextTag = info.rawTextTag;
  open.headRawText = info.headRawText;
  open.preformatted = info.preformatted;
  open_.push_back(open);
}

void StreamingSnapshotBuilder::popOpen() {
  Open& top = open_.back();
  snap_->subtreeEnd_[top.row] = rowCount();
  if (top.preformatted) --preformattedDepth_;
  open_.pop_back();
}

StreamPageInfo collectPageInfo(const dom::Node& document) {
  StreamPageInfo info;
  if (const dom::Node* base = document.findFirst("base")) {
    if (const auto href = base->attribute("href");
        href.has_value() && !href->empty()) {
      info.baseHref = *href;
    }
  }
  dom::preorder(document, [&](const dom::Node& node, std::size_t) {
    if (!node.isElement()) return true;
    const std::string& tag = node.name();
    std::optional<std::string> reference;
    if (tag == "img" || tag == "script" || tag == "iframe" ||
        tag == "embed") {
      reference = node.attribute("src");
    } else if (tag == "link") {
      const auto rel = node.attribute("rel");
      if (rel.has_value() && util::containsIgnoreCase(*rel, "stylesheet")) {
        reference = node.attribute("href");
      }
    }
    if (reference.has_value() && !reference->empty()) {
      info.subresourceRefs.push_back(std::move(*reference));
    }
    return true;
  });
  return info;
}

StreamParseResult buildSnapshotStreaming(
    std::string_view htmlText, const ParseOptions& options,
    const provenance::ProvenanceMap* provenance) {
  StreamingSnapshotBuilder builder;
  return builder.build(htmlText, options, provenance);
}

}  // namespace cookiepicker::html
