#include "core/explain.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/cvce.h"
#include "core/rstm.h"
#include "core/stm.h"
#include "util/stats.h"

namespace cookiepicker::core {

namespace {

using dom::Node;

// Collects, for every countable (visible, non-leaf, within-level) node, its
// element path from the comparison root, with a multiplicity count.
void collectPaths(const Node& node, const std::string& prefix, int level,
                  int maxLevel, std::map<std::string, int>& paths) {
  const int currentLevel = level + 1;
  if (node.childCount() == 0 || !isVisibleStructuralNode(node) ||
      currentLevel > maxLevel) {
    return;
  }
  const std::string path =
      prefix.empty() ? node.name() : prefix + ">" + node.name();
  ++paths[path];
  for (const auto& child : node.children()) {
    collectPaths(*child, path, currentLevel, maxLevel, paths);
  }
}

// Paths with higher multiplicity on `left` than on `right`, rendered as
// "path (xN)" and ordered by excess multiplicity.
std::vector<std::string> pathExcess(const std::map<std::string, int>& left,
                                    const std::map<std::string, int>& right,
                                    std::size_t maxItems) {
  std::vector<std::pair<int, std::string>> excess;
  for (const auto& [path, count] : left) {
    const auto it = right.find(path);
    const int delta = count - (it == right.end() ? 0 : it->second);
    if (delta > 0) excess.emplace_back(delta, path);
  }
  std::sort(excess.begin(), excess.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::string> rendered;
  for (std::size_t i = 0; i < excess.size() && i < maxItems; ++i) {
    rendered.push_back(excess[i].second +
                       (excess[i].first > 1
                            ? " (x" + std::to_string(excess[i].first) + ")"
                            : ""));
  }
  return rendered;
}

std::vector<std::string> setOnly(const std::set<std::string>& left,
                                 const std::set<std::string>& right,
                                 std::size_t maxItems) {
  std::vector<std::string> only;
  for (const std::string& entry : left) {
    if (!right.contains(entry)) {
      only.push_back(entry);
      if (only.size() >= maxItems) break;
    }
  }
  return only;
}

void appendList(std::string& out, const char* heading,
                const std::vector<std::string>& items) {
  if (items.empty()) return;
  out += heading;
  for (const std::string& item : items) {
    out += "\n    " + item;
  }
  out += "\n";
}

}  // namespace

std::string DifferenceExplanation::summary() const {
  std::string out;
  out += "NTreeSim=" + util::TextTable::formatDouble(decision.treeSim, 3) +
         " NTextSim=" + util::TextTable::formatDouble(decision.textSim, 3) +
         " -> " +
         (decision.causedByCookies ? "difference attributed to cookies"
                                   : "no cookie-caused difference") +
         "\n";
  appendList(out, "  structure only with cookies:", structureOnlyInRegular);
  appendList(out, "  structure only without cookies:",
             structureOnlyInHidden);
  appendList(out, "  text only with cookies:", textOnlyInRegular);
  appendList(out, "  text only without cookies:", textOnlyInHidden);
  return out;
}

DifferenceExplanation explainDifference(const dom::Node& regularDocument,
                                        const dom::Node& hiddenDocument,
                                        const ExplainOptions& options) {
  DifferenceExplanation explanation;
  explanation.decision = decideCookieUsefulness(
      regularDocument, hiddenDocument, options.decision);
  collectDifferenceEvidence(regularDocument, hiddenDocument, options,
                            explanation);
  return explanation;
}

void collectDifferenceEvidence(const dom::Node& regularDocument,
                               const dom::Node& hiddenDocument,
                               const ExplainOptions& options,
                               DifferenceExplanation& explanation) {
  const Node& regularRoot = comparisonRoot(regularDocument);
  const Node& hiddenRoot = comparisonRoot(hiddenDocument);

  std::map<std::string, int> regularPaths;
  std::map<std::string, int> hiddenPaths;
  collectPaths(regularRoot, "", 0, options.decision.maxLevel, regularPaths);
  collectPaths(hiddenRoot, "", 0, options.decision.maxLevel, hiddenPaths);
  explanation.structureOnlyInRegular =
      pathExcess(regularPaths, hiddenPaths, options.maxItems);
  explanation.structureOnlyInHidden =
      pathExcess(hiddenPaths, regularPaths, options.maxItems);

  const auto regularText =
      extractContextContent(regularRoot, options.decision.cvce);
  const auto hiddenText =
      extractContextContent(hiddenRoot, options.decision.cvce);
  explanation.textOnlyInRegular =
      setOnly(regularText, hiddenText, options.maxItems);
  explanation.textOnlyInHidden =
      setOnly(hiddenText, regularText, options.maxItems);
}

}  // namespace cookiepicker::core
