#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace cookiepicker::util {

namespace {

void setError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

}  // namespace

bool readFile(const std::string& path, std::string& out, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    setError(error, "cannot open " + path);
    return false;
  }
  out.clear();
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, got);
  }
  const bool ok = std::ferror(file) == 0;
  if (!ok) setError(error, "read error on " + path);
  std::fclose(file);
  return ok;
}

bool writeFileSync(const std::string& path, std::string_view bytes,
                   std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    setError(error, "cannot create " + path);
    return false;
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      setError(error, "write error on " + path);
      ::close(fd);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    setError(error, "fsync error on " + path);
    ::close(fd);
    return false;
  }
  if (::close(fd) != 0) {
    setError(error, "close error on " + path);
    return false;
  }
  return true;
}

bool atomicWriteFile(const std::string& path, std::string_view bytes,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  if (!writeFileSync(tmp, bytes, error)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " over " + path + ": " + ec.message();
    }
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace cookiepicker::util
