// The CookiePicker verdict service.
//
// An HttpHandler exposing cookie-usefulness verdicts over HTTP — the
// service half of `cookiepicker serve`. A request names a host from the
// roster; the service runs a full CookiePicker training session for it
// (fresh Browser + jar + SimClock, RNG keyed by host name, exactly the
// fleet's session recipe) with every fetch flowing through the injected
// net::Transport — the sim for reference runs, the SocketTransport for the
// real service tier, where hidden requests become batched pipelined
// fetches against the origin tier.
//
// Routes:
//   GET /healthz               → 200 "ok"
//   GET /verdict?host=H[&views=N] → verdict JSON: session report plus the
//       sorted useful/blocked persistent-cookie names. Deterministic
//       fields only — no timing — so two runs (or sim vs. socket) can be
//       compared byte-for-byte; the soak harness does exactly that.
//   GET /stats                 → service counters JSON
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "cookies/policy.h"
#include "core/cookie_picker.h"
#include "knowledge/knowledge_base.h"
#include "net/transport.h"

namespace cookiepicker::serve {

struct VerdictServiceConfig {
  int defaultViews = 12;
  std::uint64_t seed = 2007;
  core::CookiePickerConfig picker;
  cookies::CookiePolicy policy = cookies::CookiePolicy::recommended();
  bool enforceStableAfterRun = true;
  // Crowd-shared knowledge (optional, not owned). When set, every verdict
  // session consults it (warm hosts answer with ~0 hidden requests) and
  // publishes its export back, and the verdict JSON gains a "knowledge"
  // field naming the consult outcome. Null keeps the JSON byte-identical
  // to a service that predates the knowledge tier, which is what the
  // sim-vs-socket parity soaks compare.
  knowledge::KnowledgeBase* knowledge = nullptr;
};

class VerdictService : public net::HttpHandler {
 public:
  VerdictService(net::Transport& transport, VerdictServiceConfig config = {});

  // Hosts the service will run sessions for, with their page counts
  // (sessions cycle /page0../page{count-1} like the fleet does).
  void addHost(const std::string& host, int pageCount);

  net::HttpResponse handle(const net::HttpRequest& request) override;

  // The verdict body for `host` without the HTTP shell (used directly by
  // the soak harness and the CLI's --once mode).
  std::string runVerdict(const std::string& host, int views);

  std::uint64_t sessionsRun() const;

 private:
  net::Transport& transport_;
  VerdictServiceConfig config_;
  std::map<std::string, int> hostPages_;
  mutable std::mutex mutex_;
  std::uint64_t sessionsRun_ = 0;
};

}  // namespace cookiepicker::serve
