// HTML tokenizer.
//
// A lenient, single-pass tokenizer in the spirit of the WHATWG algorithm but
// much smaller: it produces the token stream the tree builder (parser.h)
// consumes. Robust against malformed markup — unterminated tags, bare '<',
// stray '>', bogus comments — because the paper's pipeline depends on both
// page versions being tokenized by the *same* forgiving code path.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dom/node.h"

namespace cookiepicker::html {

enum class TokenType { Doctype, StartTag, EndTag, Text, Comment, EndOfFile };

struct Token {
  TokenType type = TokenType::EndOfFile;
  std::string name;                         // tag or doctype name (lowercase)
  std::string text;                         // text/comment data (entity-decoded)
  std::vector<dom::Attribute> attributes;   // start tags only
  bool selfClosing = false;                 // "<br/>"
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input) {}

  // Returns the next token; TokenType::EndOfFile once exhausted.
  Token next();

  // Tokenizes the whole input (excluding the EndOfFile token).
  static std::vector<Token> tokenizeAll(std::string_view input);

 private:
  Token textToken(std::size_t start, std::size_t end);
  Token scanMarkup();         // called at '<'
  Token scanComment();        // called after "<!--"
  Token scanBogusComment();   // "<!foo", "<?xml" etc.
  Token scanDoctype();        // after "<!DOCTYPE"
  Token scanTag(bool isEndTag);
  void scanAttributes(Token& token);
  Token rawText(const std::string& tagName);

  std::string_view input_;
  std::size_t position_ = 0;
  // When a <script>/<style>/<textarea>/<title> start tag is emitted, the
  // tokenizer switches to raw-text mode until the matching end tag.
  std::string rawTextEndTag_;
};

// Tags whose content is raw text (no nested markup, no entity decoding for
// script/style).
bool isRawTextTag(std::string_view tagName);

}  // namespace cookiepicker::html
