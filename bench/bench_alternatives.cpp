// The alternatives comparison behind Sections 1 and 6: what each
// cookie-management approach costs the user, and how much of the cookie
// population it can actually decide. Four contenders over the same 60-site
// population and browsing workload:
//
//   * prompt-based manager (Cookie Crusher / CookiePal style),
//   * P3P policies (with realistic ~8% site adoption),
//   * Doppelganger-style mirroring,
//   * CookiePicker.
#include <cstdio>

#include "baseline/alternatives.h"
#include "baseline/doppelganger.h"
#include "browser/browser.h"
#include "core/cookie_picker.h"
#include "net/network.h"
#include "server/generator.h"
#include "util/clock.h"
#include "util/stats.h"

namespace {

using namespace cookiepicker;

constexpr int kSites = 60;
constexpr int kViewsPerSite = 8;

struct Workload {
  util::SimClock clock;
  net::Network network{909};
  browser::Browser browser{network, clock};
  std::vector<server::SiteSpec> roster;

  Workload() {
    roster = server::measurementRoster(kSites, 4711);
    server::registerRoster(network, clock, roster);
  }

  template <typename PerView>
  void browseAll(PerView&& perView) {
    for (const server::SiteSpec& spec : roster) {
      for (int view = 0; view < kViewsPerSite; ++view) {
        const auto pageView = browser.visit(
            "http://" + spec.domain + "/page" +
            std::to_string(view % spec.pageCount));
        perView(pageView, spec);
        browser.think();
      }
    }
  }
};

bool isUsefulName(const server::SiteSpec& spec, const std::string& name) {
  for (const std::string& useful : spec.usefulCookieNames()) {
    if (useful == name) return true;
  }
  return false;
}

}  // namespace

int main() {
  std::printf("=== Cookie-management alternatives (Sections 1 & 6) ===\n");
  std::printf("workload: %d sites x %d views\n\n", kSites, kViewsPerSite);

  util::TextTable table({"approach", "user interruptions",
                         "undecidable cookies", "wrong decisions",
                         "extra requests"});

  // --- 1. prompt-based manager ------------------------------------------
  {
    Workload workload;
    // The oracle is a *perfectly informed* user — the best case for
    // prompting; the cost that remains is the interruption count.
    std::map<std::string, const server::SiteSpec*> byDomain;
    for (const auto& spec : workload.roster) byDomain[spec.domain] = &spec;
    baseline::PromptingManager manager(
        [&](const std::string& host, const std::string& name) {
          const auto it = byDomain.find(host);
          return it != byDomain.end() && isUsefulName(*it->second, name);
        });
    workload.network.resetCounters();
    const auto before = workload.network.totalRequests();
    workload.browseAll([&](const browser::PageView& view,
                           const server::SiteSpec&) {
      manager.onPageView(workload.browser, view);
    });
    (void)before;
    table.addRow({"prompt-per-cookie (CookiePal-style)",
                  std::to_string(manager.totalPrompts()), "0", "0", "0"});
  }

  // --- 2. P3P ---------------------------------------------------------------
  {
    Workload workload;
    baseline::P3pClassifier classifier(workload.network);
    int undecidable = 0;
    int decided = 0;
    workload.browseAll([](const browser::PageView&,
                          const server::SiteSpec&) {});
    for (const cookies::CookieRecord* record :
         workload.browser.jar().all()) {
      if (!record->persistent) continue;
      if (classifier.classify(record->key.domain, record->key.name)
              .has_value()) {
        ++decided;
      } else {
        ++undecidable;
      }
    }
    table.addRow({"P3P (8% site adoption)", "0",
                  std::to_string(undecidable) + " of " +
                      std::to_string(undecidable + decided),
                  "0 (policies truthful)",
                  std::to_string(classifier.policyFetches())});
  }

  // --- 3. Doppelganger --------------------------------------------------------
  {
    Workload workload;
    baseline::Doppelganger doppelganger(
        workload.browser, workload.network,
        [](const std::string& a, const std::string& b) {
          return a.size() != b.size();
        });
    const auto requestsBefore = workload.network.totalRequests();
    std::uint64_t regularRequests = 0;
    workload.browseAll([&](const browser::PageView& view,
                           const server::SiteSpec&) {
      regularRequests = workload.network.totalRequests();
      doppelganger.onPageView(view);
    });
    (void)requestsBefore;
    (void)regularRequests;
    table.addRow({"Doppelganger-style mirror",
                  std::to_string(doppelganger.stats().userPrompts), "0",
                  "(user-dependent)",
                  std::to_string(doppelganger.stats().mirroredRequests)});
  }

  // --- 4. CookiePicker ---------------------------------------------------------
  {
    Workload workload;
    core::CookiePicker picker(workload.browser);
    int falseUseful = 0;
    int missedUseful = 0;
    std::uint64_t hiddenRequests = 0;
    workload.browseAll([&](const browser::PageView& view,
                           const server::SiteSpec&) {
      const auto report = picker.onPageLoaded(view);
      if (report.hiddenRequestSent) ++hiddenRequests;
    });
    for (const auto& spec : workload.roster) {
      for (const cookies::CookieRecord* record :
           workload.browser.jar().persistentCookiesForHost(spec.domain)) {
        const bool useful = isUsefulName(spec, record->key.name);
        if (record->useful && !useful) ++falseUseful;
        if (!record->useful && useful) ++missedUseful;
      }
    }
    table.addRow({"CookiePicker", "0", "0",
                  std::to_string(falseUseful) + " false-useful, " +
                      std::to_string(missedUseful) + " missed",
                  std::to_string(hiddenRequests)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: prompting decides everything but interrupts the\n"
      "user hundreds of times (the unusability finding of [5,13]); P3P\n"
      "never interrupts but leaves ~90%% of cookies undecidable at\n"
      "realistic adoption; Doppelganger automates detection but still\n"
      "needs a human verdict per difference and mirrors whole sessions;\n"
      "CookiePicker is fully automatic at one extra container request per\n"
      "view, erring only toward keeping some useless cookies.\n");
  return 0;
}
