// Ablation: RSTM's level restriction l (§4.1.3, design decision 1).
// Two effects trade off against each other:
//   * too shallow → cookie effects below the cut become invisible and
//     useful cookies are missed;
//   * too deep → leaf-level page dynamics (structurally varying ads) leak
//     into the metric, and detection cost grows toward full STM.
// Sweeps l and reports accuracy on useful-cookie sites, false positives on
// sites with structurally-varying ads, and detection cost on large pages.
#include <cstdio>

#include "bench_support.h"
#include "core/rstm.h"
#include "core/stm.h"
#include "html/parser.h"
#include "server/generator.h"
#include "util/clock.h"
#include "util/stats.h"

namespace {

using namespace cookiepicker;

// Roster for this ablation: useful-cookie sites plus calm tracker sites
// with *structurally varying* ads (the leaf noise l is meant to exclude).
std::vector<server::SiteSpec> ablationRoster() {
  std::vector<server::SiteSpec> roster;
  for (int i = 0; i < 6; ++i) {
    server::SiteSpec spec;
    spec.category = server::directoryCategories()[static_cast<std::size_t>(
        i % 15)];
    spec.seed = 500 + static_cast<std::uint64_t>(i) * 13;
    if (i < 3) {
      spec.label = "U" + std::to_string(i + 1);  // useful: preference
      spec.domain = "u" + std::to_string(i + 1) + ".lvl.example";
      spec.preferenceCookies = 1;
      spec.preferenceIntensity = 1 + i % 3;
    } else {
      spec.label = "N" + std::to_string(i - 2);  // noisy tracker site
      spec.domain = "n" + std::to_string(i - 2) + ".lvl.example";
      spec.containerTrackers = 2;
      spec.adStructuralVariation = true;  // leaf-level structural churn
      spec.adSlotsPerSection = 4;         // ad-dense pages
    }
    roster.push_back(spec);
  }
  return roster;
}

}  // namespace

int main() {
  std::printf("=== Level ablation (RSTM maxLevel l, paper uses l = 5) ===\n\n");

  const auto roster = ablationRoster();
  util::TextTable table({"l", "missed useful cookies", "false useful cookies",
                         "NTreeSim cost on 200-section page (ms)"});

  // Pre-build one large page pair for the cost column.
  const auto largeA =
      html::parseHtml(server::generateLargePageHtml(200, 1));
  const auto largeB =
      html::parseHtml(server::generateLargePageHtml(200, 2));
  const dom::Node& largeRootA = core::comparisonRoot(*largeA);
  const dom::Node& largeRootB = core::comparisonRoot(*largeB);

  for (const int level : {1, 2, 3, 4, 5, 7, 9, 12, 50}) {
    bench::CampaignOptions options;
    options.viewsPerSite = 14;
    options.picker.forcum.decision.maxLevel = level;
    // TreeOnly isolates the metric the level parameter belongs to: in the
    // full system CVCE's ad filter independently shields the text metric,
    // so the AND-decision would mask the tree metric's leaf-noise leakage.
    options.picker.forcum.decision.mode = core::DecisionMode::TreeOnly;
    const bench::CampaignResult result =
        bench::runCampaign(roster, options);

    int missed = 0;
    int falseUseful = 0;
    for (const bench::SiteResult& site : result.sites) {
      missed += std::max(0, site.realUseful - site.markedUseful);
      falseUseful += std::max(0, site.markedUseful - site.realUseful);
    }

    // Detection cost at this level on the big page (best of 3).
    double bestMs = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      const util::StopWatch watch;
      core::nTreeSim(largeRootA, largeRootB, level);
      bestMs = std::min(bestMs, watch.elapsedMs());
    }

    table.addRow({std::to_string(level), std::to_string(missed),
                  std::to_string(falseUseful),
                  util::TextTable::formatDouble(bestMs, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: l <= 2 sees almost no structure and misses useful\n"
      "cookies; very large l admits leaf-level ad churn (false useful on\n"
      "the N* sites) and detection cost climbs toward full-STM territory.\n"
      "l = 5 detects every useful cookie, resists the ad noise, and stays\n"
      "cheap — the paper's setting.\n");
  return 0;
}
