#include "cookies/jar.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/strings.h"

namespace cookiepicker::cookies {

namespace {

// One serialized jar line (no trailing newline). Shared by serialize() and
// the durability emitters, so a line replayed from the WAL is byte-identical
// to the same cookie's line in a serialize() blob.
void appendCookieLine(std::string& out, const CookieKey& key,
                      const CookieRecord& record) {
  util::appendParts(
      out, {key.name, "\t", record.value, "\t", key.domain, "\t", key.path,
            "\t", record.hostOnly ? "1" : "0", "\t",
            record.secure ? "1" : "0", "\t", record.httpOnly ? "1" : "0",
            "\t", record.persistent ? "1" : "0", "\t",
            std::to_string(record.expiryMs), "\t",
            std::to_string(record.creationMs), "\t",
            record.firstParty ? "1" : "0", "\t",
            record.useful ? "1" : "0"});
}

// Escaped "name|domain|path" — the WAL's jar record key, matching the
// FORCUM state format's cookie-key rendering.
std::string cookieStateKey(const CookieKey& key) {
  std::string out;
  util::appendEscapedStateField(out, key.name);
  out += '|';
  util::appendEscapedStateField(out, key.domain);
  out += '|';
  util::appendEscapedStateField(out, key.path);
  return out;
}

}  // namespace

std::string defaultCookiePath(const net::Url& url) {
  const std::string& path = url.path();
  const std::size_t lastSlash = path.rfind('/');
  if (lastSlash == std::string::npos || lastSlash == 0) return "/";
  return path.substr(0, lastSlash);
}

bool pathMatches(const std::string& requestPath,
                 const std::string& cookiePath) {
  if (requestPath == cookiePath) return true;
  if (requestPath.size() > cookiePath.size() &&
      requestPath.compare(0, cookiePath.size(), cookiePath) == 0) {
    if (cookiePath.back() == '/') return true;
    return requestPath[cookiePath.size()] == '/';
  }
  return false;
}

CookieJar::CookieJar(const CookieJar& other) {
  std::lock_guard lock(other.mutex_);
  cookies_ = other.cookies_;
  limits_ = other.limits_;
  evictions_ = other.evictions_;
  // sink_ stays null: a copy is a new session's jar, not the emitter.
}

CookieJar& CookieJar::operator=(const CookieJar& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  cookies_ = other.cookies_;
  limits_ = other.limits_;
  evictions_ = other.evictions_;
  // sink_ deliberately kept: loadState replaces a live jar's contents via
  // assignment, and the session's durability wiring must survive that.
  return *this;
}

void CookieJar::emitUpsertLocked(const CookieKey& key,
                                 const CookieRecord& record,
                                 store::RecordType type) {
  if (sink_ == nullptr) return;
  std::string body = cookieStateKey(key);
  body.push_back('\t');
  appendCookieLine(body, key, record);
  sink_->append(type, body);
}

void CookieJar::emitRemoveLocked(const CookieKey& key) {
  if (sink_ == nullptr) return;
  sink_->append(store::RecordType::JarRemove, cookieStateKey(key));
}

SetCookieOutcome CookieJar::store(const net::SetCookie& parsed,
                                  const net::Url& requestUrl, bool firstParty,
                                  util::SimTimeMs nowMs) {
  CookieRecord record;
  record.key.name = parsed.name;
  record.value = parsed.value;

  if (parsed.domain.has_value()) {
    // The declared domain must cover the request host, otherwise the cookie
    // is rejected (same rule browsers enforce).
    if (!net::hostMatchesDomain(requestUrl.host(), *parsed.domain)) {
      return SetCookieOutcome::Rejected;
    }
    record.key.domain = *parsed.domain;
    record.hostOnly = false;
  } else {
    record.key.domain = requestUrl.host();
    record.hostOnly = true;
  }
  record.key.path =
      parsed.path.has_value() ? *parsed.path : defaultCookiePath(requestUrl);

  record.secure = parsed.secure;
  record.httpOnly = parsed.httpOnly;
  record.firstParty = firstParty;
  record.creationMs = nowMs;
  record.lastAccessMs = nowMs;

  // Max-Age takes precedence over Expires; either makes it persistent.
  if (parsed.maxAgeSeconds.has_value()) {
    record.persistent = true;
    record.expiryMs = nowMs + *parsed.maxAgeSeconds * 1000;
  } else if (parsed.expiresEpochSeconds.has_value()) {
    record.persistent = true;
    record.expiryMs = *parsed.expiresEpochSeconds * 1000;
  }

  std::lock_guard lock(mutex_);
  const auto existing = cookies_.find(record.key);
  // An already-expired cookie (Max-Age <= 0 or past Expires) is a deletion
  // request.
  if (record.persistent && record.expiryMs <= nowMs) {
    if (existing != cookies_.end()) {
      cookies_.erase(existing);
      emitRemoveLocked(record.key);
      obs::gaugeSet(obs::Gauge::JarCookies,
                    static_cast<std::int64_t>(cookies_.size()));
      return SetCookieOutcome::Deleted;
    }
    return SetCookieOutcome::Rejected;
  }

  if (existing != cookies_.end()) {
    // Preserve creation time and — critically for FORCUM — the useful mark.
    record.creationMs = existing->second.creationMs;
    record.useful = existing->second.useful;
    existing->second = record;
    emitUpsertLocked(record.key, record, store::RecordType::JarUpsert);
    return SetCookieOutcome::Updated;
  }
  cookies_.emplace(record.key, record);
  emitUpsertLocked(record.key, record, store::RecordType::JarUpsert);
  enforceLimits(record.key.domain);
  obs::gaugeSet(obs::Gauge::JarCookies,
                static_cast<std::int64_t>(cookies_.size()));
  return SetCookieOutcome::Stored;
}

void CookieJar::enforceLimits(const std::string& domain) {
  // Eviction preference: unmarked cookies before useful ones, then least
  // recently accessed — so the jar pressure a tracker-happy site creates
  // cannot push out the cookies CookiePicker decided to keep.
  auto evictFrom = [this](const std::function<bool(const CookieRecord&)>&
                              inScope) {
    const CookieRecord* victim = nullptr;
    for (const auto& [key, record] : cookies_) {
      if (!inScope(record)) continue;
      if (victim == nullptr ||
          (record.useful == victim->useful
               ? record.lastAccessMs < victim->lastAccessMs
               : !record.useful && victim->useful)) {
        victim = &record;
      }
    }
    if (victim != nullptr) {
      const CookieKey evictedKey = victim->key;
      cookies_.erase(evictedKey);
      emitRemoveLocked(evictedKey);
      ++evictions_;
      obs::count(obs::Counter::JarEvictions);
    }
  };

  auto domainCount = [this, &domain]() {
    std::size_t count = 0;
    for (const auto& [key, record] : cookies_) {
      if (key.domain == domain) ++count;
    }
    return count;
  };
  while (domainCount() > limits_.maxPerDomain) {
    evictFrom([&domain](const CookieRecord& record) {
      return record.key.domain == domain;
    });
  }
  while (cookies_.size() > limits_.maxTotal) {
    evictFrom([](const CookieRecord&) { return true; });
  }
}

std::vector<const CookieRecord*> CookieJar::cookiesForLocked(
    const net::Url& url, util::SimTimeMs nowMs, const SendOptions& options) {
  removeIfLocked([nowMs](const CookieRecord& record) {
    return record.isExpired(nowMs);
  });
  std::vector<CookieRecord*> matches;
  for (auto& [key, record] : cookies_) {
    const bool domainOk =
        record.hostOnly
            ? util::equalsIgnoreCase(url.host(), key.domain)
            : net::hostMatchesDomain(url.host(), key.domain);
    if (!domainOk) continue;
    if (!pathMatches(url.path(), key.path)) continue;
    if (record.secure && !url.isSecure()) continue;
    if (record.persistent) {
      if (!options.includePersistent) continue;
      if (options.excludePersistentIf && options.excludePersistentIf(record)) {
        continue;
      }
    } else {
      if (!options.includeSession) continue;
    }
    record.lastAccessMs = nowMs;
    matches.push_back(&record);
  }
  std::sort(matches.begin(), matches.end(),
            [](const CookieRecord* a, const CookieRecord* b) {
              if (a->key.path.size() != b->key.path.size()) {
                return a->key.path.size() > b->key.path.size();
              }
              if (a->creationMs != b->creationMs) {
                return a->creationMs < b->creationMs;
              }
              return a->key < b->key;
            });
  return {matches.begin(), matches.end()};
}

std::vector<const CookieRecord*> CookieJar::cookiesFor(
    const net::Url& url, util::SimTimeMs nowMs, const SendOptions& options) {
  std::lock_guard lock(mutex_);
  return cookiesForLocked(url, nowMs, options);
}

std::string CookieJar::cookieHeaderFor(const net::Url& url,
                                       util::SimTimeMs nowMs,
                                       const SendOptions& options) {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const CookieRecord* record : cookiesForLocked(url, nowMs, options)) {
    pairs.emplace_back(record->key.name, record->value);
  }
  return net::formatCookieHeader(pairs);
}

const CookieRecord* CookieJar::find(const CookieKey& key) const {
  std::lock_guard lock(mutex_);
  const auto it = cookies_.find(key);
  return it == cookies_.end() ? nullptr : &it->second;
}

std::vector<const CookieRecord*> CookieJar::all() const {
  std::lock_guard lock(mutex_);
  std::vector<const CookieRecord*> records;
  records.reserve(cookies_.size());
  for (const auto& [key, record] : cookies_) records.push_back(&record);
  return records;
}

std::vector<const CookieRecord*> CookieJar::persistentCookiesForHost(
    const std::string& host) const {
  std::lock_guard lock(mutex_);
  std::vector<const CookieRecord*> records;
  for (const auto& [key, record] : cookies_) {
    if (!record.persistent) continue;
    const bool domainOk = record.hostOnly
                              ? util::equalsIgnoreCase(host, key.domain)
                              : net::hostMatchesDomain(host, key.domain);
    if (domainOk) records.push_back(&record);
  }
  return records;
}

bool CookieJar::markUseful(const CookieKey& key) {
  std::lock_guard lock(mutex_);
  const auto it = cookies_.find(key);
  if (it == cookies_.end()) return false;
  it->second.useful = true;
  emitUpsertLocked(key, it->second, store::RecordType::CookieMarked);
  return true;
}

std::size_t CookieJar::removeIfLocked(
    const std::function<bool(const CookieRecord&)>& predicate) {
  std::size_t removed = 0;
  for (auto it = cookies_.begin(); it != cookies_.end();) {
    if (predicate(it->second)) {
      const CookieKey removedKey = it->first;
      it = cookies_.erase(it);
      emitRemoveLocked(removedKey);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    obs::gaugeSet(obs::Gauge::JarCookies,
                  static_cast<std::int64_t>(cookies_.size()));
  }
  return removed;
}

std::size_t CookieJar::removeIf(
    const std::function<bool(const CookieRecord&)>& predicate) {
  std::lock_guard lock(mutex_);
  return removeIfLocked(predicate);
}

void CookieJar::endSession() {
  removeIf([](const CookieRecord& record) { return !record.persistent; });
}

void CookieJar::purgeExpired(util::SimTimeMs nowMs) {
  removeIf([nowMs](const CookieRecord& record) {
    return record.isExpired(nowMs);
  });
}

std::string CookieJar::serialize() const {
  // Tab-separated, one cookie per line:
  // name value domain path hostOnly secure httpOnly persistent expiry
  // creation firstParty useful
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [key, record] : cookies_) {
    appendCookieLine(out, key, record);
    out.push_back('\n');
  }
  return out;
}

CookieJar CookieJar::deserialize(const std::string& text) {
  CookieJar jar;
  for (const std::string& line : util::split(text, '\n')) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = util::split(line, '\t');
    if (fields.size() != 12) continue;  // skip malformed lines
    CookieRecord record;
    record.key.name = fields[0];
    record.value = fields[1];
    record.key.domain = fields[2];
    record.key.path = fields[3];
    record.hostOnly = fields[4] == "1";
    record.secure = fields[5] == "1";
    record.httpOnly = fields[6] == "1";
    record.persistent = fields[7] == "1";
    record.expiryMs = std::stoll(fields[8]);
    record.creationMs = std::stoll(fields[9]);
    record.firstParty = fields[10] == "1";
    record.useful = fields[11] == "1";
    jar.cookies_.emplace(record.key, record);
  }
  return jar;
}

}  // namespace cookiepicker::cookies
