// Extension-state persistence: FORCUM training state and full CookiePicker
// state (jar + training + enforcement) survive serialization round trips
// and browser restarts.
#include <filesystem>

#include <gtest/gtest.h>

#include "core/cookie_picker.h"
#include "server/generator.h"
#include "store/store.h"
#include "test_support.h"

namespace cookiepicker::core {
namespace {

using testsupport::SimWorld;

server::SiteSpec trackerSpec(const std::string& domain) {
  server::SiteSpec spec;
  spec.label = "T";
  spec.domain = domain;
  spec.category = "news";
  spec.seed = 77;
  spec.containerTrackers = 2;
  return spec;
}

TEST(ForcumPersistence, RoundTripPreservesSiteState) {
  SimWorld world;
  const auto spec = world.addSite(trackerSpec("t.example"));
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 4;
  CookiePicker picker(world.browser, config);
  for (int i = 0; i < 8; ++i) {
    picker.browse("http://t.example/page" + std::to_string(i % 5 + 1));
  }
  const ForcumEngine::SiteState* before =
      picker.forcum().siteState(spec.domain);
  ASSERT_NE(before, nullptr);
  const bool wasActive = before->trainingActive;
  const int views = before->totalViews;
  const std::size_t known = before->knownPersistent.size();

  const std::string serialized = picker.forcum().serializeState();
  picker.forcum().restoreState(serialized);

  const ForcumEngine::SiteState* after =
      picker.forcum().siteState(spec.domain);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->trainingActive, wasActive);
  EXPECT_EQ(after->totalViews, views);
  EXPECT_EQ(after->knownPersistent.size(), known);
}

TEST(ForcumPersistence, MalformedLinesSkipped) {
  SimWorld world;
  CookiePicker picker(world.browser);
  picker.forcum().restoreState("garbage\nmore\tfields\tbut\twrong\n");
  EXPECT_EQ(picker.forcum().siteState("garbage"), nullptr);
}

TEST(ForcumPersistence, EmptyStateRestores) {
  SimWorld world;
  CookiePicker picker(world.browser);
  picker.forcum().restoreState("");
  EXPECT_EQ(picker.forcum().siteState("any.example"), nullptr);
}

TEST(PickerPersistence, FullRestartKeepsDecisionsAndEnforcement) {
  SimWorld world;
  const auto spec = world.addSite(trackerSpec("t.example"));
  std::string saved;
  {
    CookiePickerConfig config;
    config.forcum.stableViewThreshold = 3;
    CookiePicker picker(world.browser, config);
    for (int i = 0; i < 7; ++i) {
      picker.browse("http://t.example/page" + std::to_string(i % 5 + 1));
    }
    picker.enforceForHost(spec.domain);
    ASSERT_TRUE(picker.isEnforced(spec.domain));
    saved = picker.saveState();
  }

  // Fresh browser process: new jar, new picker; restore.
  SimWorld world2;
  world2.addSite(trackerSpec("t.example"));
  CookiePicker restored(world2.browser);
  restored.loadState(saved);

  EXPECT_TRUE(restored.isEnforced(spec.domain));
  EXPECT_FALSE(restored.forcum().isTrainingActive(spec.domain));
  // The jar state (enforcement deleted the trackers) carried over.
  EXPECT_TRUE(
      world2.browser.jar().persistentCookiesForHost(spec.domain).empty());

  // New views neither retrain nor leak cookies: the site re-sets trackers,
  // the known-cookie set already contains them → training stays off.
  restored.browse("http://t.example/");
  EXPECT_FALSE(restored.forcum().isTrainingActive(spec.domain));
  const browser::PageView view = world2.browser.visit("http://t.example/");
  EXPECT_EQ(
      view.containerRequest.headers.get("Cookie").value_or("").find("trk"),
      std::string::npos);
}

TEST(PickerPersistence, UsefulMarksSurviveRestart) {
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "P";
  spec.domain = "pref.example";
  spec.category = "arts";
  spec.seed = 88;
  spec.preferenceCookies = 1;
  spec.preferenceIntensity = 2;
  world.addSite(spec);
  std::string saved;
  {
    CookiePicker picker(world.browser);
    for (int i = 0; i < 5; ++i) {
      picker.browse("http://pref.example/page" + std::to_string(i + 1));
    }
    saved = picker.saveState();
  }
  SimWorld world2;
  world2.addSite(spec);
  CookiePicker restored(world2.browser);
  restored.loadState(saved);
  const cookies::CookieRecord* record =
      world2.browser.jar().find({"prefstyle", "pref.example", "/"});
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->useful);
}

TEST(PickerPersistence, LoadStateIsIdempotent) {
  SimWorld world;
  world.addSite(trackerSpec("t.example"));
  CookiePicker picker(world.browser);
  for (int i = 0; i < 4; ++i) {
    picker.browse("http://t.example/page" + std::to_string(i + 1));
  }
  const std::string once = picker.saveState();
  picker.loadState(once);
  EXPECT_EQ(picker.saveState(), once);
}

// A picker with some live state whose saveState() we can tamper with, to
// prove rejected loads leave that state untouched.
std::string trainedSave(CookiePicker& picker) {
  for (int i = 0; i < 4; ++i) {
    picker.browse("http://t.example/page" + std::to_string(i + 1));
  }
  picker.enforceForHost("t.example");
  return picker.saveState();
}

TEST(PickerPersistence, LoadStateRejectsMissingMarkers) {
  SimWorld world;
  world.addSite(trackerSpec("t.example"));
  CookiePicker picker(world.browser);
  const std::string good = trainedSave(picker);
  const std::string before = picker.saveState();

  const struct {
    const char* marker;
    const char* wantInError;
  } cases[] = {
      {"== jar ==\n", "missing '== jar =='"},
      {"== forcum ==\n", "missing '== forcum =='"},
      {"== enforced ==\n", "missing '== enforced =='"},
  };
  for (const auto& testCase : cases) {
    std::string mutated = good;
    const std::size_t at = mutated.find(testCase.marker);
    ASSERT_NE(at, std::string::npos) << testCase.marker;
    mutated.erase(at, std::string(testCase.marker).size());
    std::string error;
    EXPECT_FALSE(picker.loadState(mutated, &error)) << testCase.marker;
    EXPECT_NE(error.find(testCase.wantInError), std::string::npos) << error;
    // The failed load must not have half-applied anything.
    EXPECT_EQ(picker.saveState(), before) << testCase.marker;
  }
}

TEST(PickerPersistence, LoadStateRejectsDuplicatedMarkers) {
  SimWorld world;
  world.addSite(trackerSpec("t.example"));
  CookiePicker picker(world.browser);
  const std::string good = trainedSave(picker);
  const std::string before = picker.saveState();

  for (const char* marker :
       {"== jar ==\n", "== forcum ==\n", "== enforced ==\n"}) {
    // Splice a second copy of the marker at the end, where a truncated
    // write glued two blobs together would put it.
    std::string mutated = good + marker;
    std::string error;
    EXPECT_FALSE(picker.loadState(mutated, &error)) << marker;
    EXPECT_NE(error.find("duplicated"), std::string::npos)
        << marker << " -> " << error;
    EXPECT_EQ(picker.saveState(), before) << marker;
  }
}

TEST(PickerPersistence, LoadStateRejectsOutOfOrderMarkers) {
  SimWorld world;
  world.addSite(trackerSpec("t.example"));
  CookiePicker picker(world.browser);
  trainedSave(picker);
  const std::string before = picker.saveState();

  std::string error;
  EXPECT_FALSE(picker.loadState(
      "== forcum ==\n== jar ==\n== enforced ==\n", &error));
  EXPECT_NE(error.find("out of order"), std::string::npos) << error;
  EXPECT_FALSE(picker.loadState(
      "== jar ==\n== enforced ==\n== forcum ==\n", &error));
  EXPECT_NE(error.find("out of order"), std::string::npos) << error;
  EXPECT_EQ(picker.saveState(), before);
}

TEST(PickerPersistence, LoadStateToleratesPreambleAndReportsSuccess) {
  SimWorld world;
  world.addSite(trackerSpec("t.example"));
  CookiePicker picker(world.browser);
  const std::string good = trainedSave(picker);
  std::string error;
  EXPECT_TRUE(picker.loadState("# comment preamble\n" + good, &error));
  EXPECT_TRUE(error.empty());
}

// Cross-check of the two restore paths: a picker seeded from a store
// shard's replayed records and one seeded from a saveState() blob must be
// indistinguishable — same state bytes, same verdicts on the same
// subsequent page stream.
TEST(PickerPersistence, StoreRecoveredAndLoadStateRestoredAgree) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "persistence_store_agree";
  fs::remove_all(dir);

  server::SiteSpec spec;
  spec.label = "P";
  spec.domain = "pref.example";
  spec.category = "arts";
  spec.seed = 88;
  spec.preferenceCookies = 1;
  spec.preferenceIntensity = 2;
  spec.containerTrackers = 1;

  // Session one: train while emitting through a store shard, and also keep
  // the classic saveState() blob.
  std::string saved;
  {
    SimWorld world;
    world.addSite(spec);
    store::StoreConfig storeConfig;
    storeConfig.directory = dir.string();
    store::StateStore stateStore(storeConfig);
    store::HostStore* shard = stateStore.openHost(spec.domain);
    shard->beginSession("agree-test");
    CookiePicker picker(world.browser);
    picker.attachStateSink(shard);
    for (int i = 0; i < 5; ++i) {
      picker.browse("http://pref.example/page" + std::to_string(i + 1));
    }
    picker.enforceForHost(spec.domain);
    saved = picker.saveState();
  }

  // Restore path A: replay the shard and seed a picker from the mirror's
  // synthesized blob.
  SimWorld worldA(7);
  worldA.addSite(spec);
  CookiePicker fromStore(worldA.browser);
  {
    store::StoreConfig storeConfig;
    storeConfig.directory = dir.string();
    store::StateStore stateStore(storeConfig);
    const store::ReplayedState& rec =
        stateStore.openHost(spec.domain)->recovered();
    std::string error;
    ASSERT_TRUE(fromStore.loadState(rec.synthesizeStateBlob(), &error))
        << error;
  }

  // Restore path B: the classic blob.
  SimWorld worldB(7);
  worldB.addSite(spec);
  CookiePicker fromBlob(worldB.browser);
  ASSERT_TRUE(fromBlob.loadState(saved));

  // Same state (loadState normalizes both), same verdicts from here on.
  EXPECT_EQ(fromStore.saveState(), fromBlob.saveState());
  for (int i = 0; i < 4; ++i) {
    const std::string url =
        "http://pref.example/page" + std::to_string(i % 5 + 1);
    const ForcumStepReport a = fromStore.browse(url);
    const ForcumStepReport b = fromBlob.browse(url);
    EXPECT_EQ(a.trainingActive, b.trainingActive) << url;
    EXPECT_EQ(a.hiddenRequestSent, b.hiddenRequestSent) << url;
    EXPECT_EQ(a.decision.causedByCookies, b.decision.causedByCookies) << url;
    EXPECT_EQ(a.newlyMarked.size(), b.newlyMarked.size()) << url;
  }
  EXPECT_EQ(fromStore.saveState(), fromBlob.saveState());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cookiepicker::core
