// Parallel multi-session training fleet.
//
// Scales FORCUM training from one browsing session to N worker threads
// sharing one simulated Network. The unit of work is a *host*: each worker
// pulls the next site off a shared roster queue, spins up a fresh
// Browser + CookiePicker session for it (its own SimClock and jar, its RNG
// forked from the fleet seed keyed by the host name), drives the configured
// number of page views, and records the session's final state. Hosts are
// independent — the embarrassingly parallel shape of crawl-scale cookie
// studies — so throughput scales with workers while results stay exactly
// reproducible.
//
// Determinism invariant: for a fixed seed, roster, and views-per-host, the
// per-host reports, jar marks, and `FleetReport::serializeState()` bytes are
// identical for any worker count (1, 8, ...). This holds because every
// source of randomness a host session touches is keyed by the host name
// (session RNG, the Network's per-host latency streams) and every clock is
// session-local, so scheduling order cannot leak into results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cookies/jar.h"
#include "cookies/policy.h"
#include "core/cookie_picker.h"
#include "knowledge/knowledge_base.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "server/generator.h"
#include "store/store.h"

namespace cookiepicker::fleet {

struct FleetConfig {
  int workers = 1;
  int viewsPerHost = 12;
  std::uint64_t seed = 2007;
  core::CookiePickerConfig picker;
  cookies::CookiePolicy policy = cookies::CookiePolicy::recommended();
  // Enforce every stable host at the end of its session (block + purge the
  // cookies FORCUM left unmarked), as a batch audit would.
  bool enforceStableAfterRun = true;
  // Flight recorder: when true, every host session runs under its own
  // obs::MetricsRegistry + obs::AuditTrail (installed thread-locally for
  // the session's duration), and the per-host snapshots/trails land in
  // HostResult. Deterministic metrics and audit bytes are part of the
  // fleet's determinism invariant; timing histograms are not.
  bool collectObservability = false;
  // Durable state store (optional). When set, every host session opens its
  // shard before running: a shard whose recovered state is complete under
  // the current config fingerprint is *not rerun* — its HostResult is
  // rebuilt from the stored bytes — and every other host runs from scratch
  // with the session's picker/jar/FORCUM emitting through the shard. Since
  // rerun hosts get pristine per-host RNG and latency streams (sessions are
  // pure functions of (seed, host)), a crashed-and-recovered run is
  // byte-identical to one that never crashed. Null = no durability, no
  // overhead, byte-identical results.
  store::StateStore* stateStore = nullptr;
  // Crowd-shared site knowledge (optional, not owned). When set, every host
  // session consults it at session start (a warm site skips straight to
  // enforce) and publishes its export back after the session. Determinism
  // is preserved for any worker count because sessions read and write only
  // their own host's entry, and each roster host runs exactly once. Hosts
  // short-circuited from the state store do NOT re-publish (their sessions
  // never ran); combine store recovery with knowledge via reruns, not
  // replays — see DESIGN.md §13.
  knowledge::KnowledgeBase* knowledge = nullptr;
};

// Outcome of one host's training session.
struct HostResult {
  std::string label;
  std::string host;
  core::HostReport report;
  // The session's full CookiePicker::saveState() blob (jar with marks,
  // FORCUM state, enforced hosts) — the determinism anchor.
  std::string state;
  // The session jar alone, for cross-host merging.
  std::string jarState;
  int pagesVisited = 0;
  // Session-scoped observability (filled when collectObservability is on):
  // the metrics snapshot taken at session end and the session's audit
  // trail. The deterministic half of the snapshot and the audit bytes are
  // pure functions of (seed, host, views); the timing half is host-clock.
  obs::MetricsSnapshot metrics;
  std::string auditJsonl;
  // Host (real) time the session took and which worker ran it. Informational
  // only: excluded from serializeState() so timing never breaks determinism.
  double wallMs = 0.0;
  int workerIndex = -1;
  // True when this result was rebuilt from the state store instead of
  // rerunning the session. Recovered results carry every deterministic
  // field byte-identically; the host-clock timing averages in `report` are
  // zero (they are not persisted — they never determine anything).
  bool recovered = false;
};

struct FleetReport {
  int workers = 1;
  double wallMs = 0.0;
  std::uint64_t pagesVisited = 0;
  std::uint64_t hiddenRequests = 0;
  double pagesPerSecond = 0.0;
  double hiddenRequestsPerSecond = 0.0;
  // Sum of per-worker busy time over (workers * wall time); 1.0 = no worker
  // ever idled waiting for the queue to drain.
  double workerUtilization = 0.0;
  // Always in roster order, whatever order the queue drained in.
  std::vector<HostResult> hosts;

  int totalPersistentCookies() const;
  int totalMarkedUseful() const;

  // Concatenation of every host session's state, in roster order — the blob
  // the determinism tests compare byte-for-byte across worker counts.
  std::string serializeState() const;
  // Union of the per-session jars (host sessions touch disjoint cookie
  // domains, so the merge is conflict-free).
  cookies::CookieJar mergedJar() const;

  // Merge of the per-host metrics snapshots, in roster order. Counter and
  // gauge merges commute, so the deterministic half is identical for any
  // worker count; timer histograms merge too but carry host-clock values.
  obs::MetricsSnapshot mergedMetrics() const;
  // Concatenation of the per-host audit trails, in roster order — a
  // scheduling-independent JSONL stream (seq numbers are per host session).
  std::string auditJsonl() const;
};

class TrainingFleet {
 public:
  // Any transport works: the seeded-latency sim (byte-identical results for
  // any worker count) or a socket transport whose hidden fetches flow
  // through shared per-host connection pools.
  TrainingFleet(net::Transport& network, FleetConfig config = {});

  // Trains every site in the roster, fanning the hosts out over
  // `config.workers` threads. The roster must already be registered on the
  // transport's backing tier (see server::registerRoster for the sim).
  // `workers <= 1` runs inline on the calling thread.
  FleetReport run(const std::vector<server::SiteSpec>& roster);

  const FleetConfig& config() const { return config_; }

  // The config fingerprint stored with every session — recovery reruns any
  // shard whose fingerprint differs, so stale state can never masquerade
  // as a result of the current configuration.
  std::string configFingerprint() const;

 private:
  HostResult runHostSession(const server::SiteSpec& spec) const;

  net::Transport& network_;
  FleetConfig config_;
};

}  // namespace cookiepicker::fleet
