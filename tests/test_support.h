// Shared fixtures and helpers for the test suite.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "faults/fault_plan.h"
#include "fleet/aggregate.h"
#include "fleet/fleet.h"
#include "knowledge/knowledge_base.h"
#include "net/network.h"
#include "server/generator.h"
#include "server/site.h"
#include "store/store.h"
#include "util/clock.h"

namespace cookiepicker::testsupport {

// A little internet: network + clock + browser wired together, with helpers
// to drop sites in.
struct SimWorld {
  util::SimClock clock;
  net::Network network{42};
  browser::Browser browser{network, clock};

  explicit SimWorld(std::uint64_t networkSeed = 42)
      : network(networkSeed), browser(network, clock) {}

  // Registers a site built from a spec and returns its spec for ground truth.
  server::SiteSpec addSite(server::SiteSpec spec) {
    network.registerHost(spec.domain, server::buildSite(spec, clock),
                         spec.latencyProfile());
    return spec;
  }

  // A minimal calm site with one preference cookie and two trackers.
  server::SiteSpec addGenericSite(const std::string& domain,
                                  std::uint64_t seed = 7) {
    return addSite(server::makeGenericSpec("T", domain, seed));
  }

  std::string urlFor(const server::SiteSpec& spec,
                     const std::string& path = "/") const {
    return "http://" + spec.domain + path;
  }
};

// One fleet training run over a measurement roster — the recipe the
// fleet/obs/fault determinism tests all share. Every call builds a fresh
// server clock + network (runs must not share latency-RNG or server-side
// state, or comparing two runs would be meaningless), registers the roster
// before workers spawn, and installs the fault plan (if any) up front.
struct FleetRunOptions {
  int workers = 1;
  int viewsPerHost = 8;
  std::uint64_t seed = 1234;
  bool collectObservability = false;
  bool autoEnforce = true;
  // Off by default — the attribution-off differential pin depends on the
  // default run carrying zero provenance artifacts.
  core::AttributionMode attribution = core::AttributionMode::Off;
  std::shared_ptr<const faults::FaultPlan> faultPlan;
  // Durable state store the fleet should write through / recover from
  // (null = no durability). Owned by the caller, who also owns any crash
  // schedule installed on it.
  store::StateStore* stateStore = nullptr;
};

inline fleet::FleetReport runMeasurementFleet(
    const std::vector<server::SiteSpec>& roster,
    const FleetRunOptions& options) {
  util::SimClock serverClock;
  net::Network network(options.seed);
  server::registerRoster(network, serverClock, roster);
  if (options.faultPlan != nullptr) network.setFaultPlan(options.faultPlan);
  fleet::FleetConfig config;
  config.workers = options.workers;
  config.viewsPerHost = options.viewsPerHost;
  config.seed = options.seed;
  config.picker.autoEnforce = options.autoEnforce;
  config.picker.forcum.attribution = options.attribution;
  config.collectObservability = options.collectObservability;
  config.stateStore = options.stateStore;
  fleet::TrainingFleet trainingFleet(network, config);
  return trainingFleet.run(roster);
}

// The N-fleet spawn/gossip/merge recipe shared by the fleet, knowledge and
// serve suites: build a KnowledgeFleetConfig from FleetRunOptions-style
// knobs and run the aggregation driver. Callers vary the topology/round
// count and compare serialized knowledge; everything else stays pinned so
// two calls differ only where the test means them to.
struct KnowledgeRunOptions {
  int fleets = 3;
  int rounds = 2;
  fleet::GossipTopology topology = fleet::GossipTopology::Ring;
  int workers = 1;
  int viewsPerHost = 8;
  // Low enough that training finishes inside viewsPerHost views — gossip
  // has nothing to share unless round-one sites actually reach stable.
  int stableViewThreshold = 3;
  std::uint64_t seed = 1234;
  bool collectObservability = true;
  std::shared_ptr<const faults::FaultPlan> faultPlan;
};

inline fleet::KnowledgeFleetReport runKnowledgeFleets(
    const std::vector<server::SiteSpec>& roster,
    const KnowledgeRunOptions& options,
    knowledge::KnowledgeBase* sharedBase = nullptr) {
  fleet::KnowledgeFleetConfig config;
  config.fleets = options.fleets;
  config.rounds = options.rounds;
  config.topology = options.topology;
  config.faultPlan = options.faultPlan;
  config.base.workers = options.workers;
  config.base.viewsPerHost = options.viewsPerHost;
  config.base.picker.forcum.stableViewThreshold = options.stableViewThreshold;
  config.base.seed = options.seed;
  config.base.collectObservability = options.collectObservability;
  return fleet::runKnowledgeFleets(roster, config, sharedBase);
}

}  // namespace cookiepicker::testsupport
