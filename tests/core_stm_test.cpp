#include <gtest/gtest.h>

#include "core/rstm.h"
#include "core/stm.h"
#include "dom/builder.h"
#include "html/parser.h"

namespace cookiepicker::core {
namespace {

using dom::buildTree;
using dom::figure3TreeA;
using dom::figure3TreeB;
using dom::Node;

// --- STM (Figure 3 anchor) ---------------------------------------------------

TEST(Stm, Figure3ReturnsSevenPairs) {
  // The paper's worked example: STM(A, B) = 7.
  EXPECT_EQ(simpleTreeMatching(*figure3TreeA(), *figure3TreeB()), 7u);
}

TEST(Stm, Figure3MappingMatchesPaperPairs) {
  auto treeA = figure3TreeA();
  auto treeB = figure3TreeB();
  const StmMapping mapping = simpleTreeMatchingWithMapping(*treeA, *treeB);
  EXPECT_EQ(mapping.matchCount, 7u);

  // Compute preorder indices (1-based, as the paper numbers N1..N14 and
  // N15..N22) of each matched node.
  auto preorderIndex = [](const Node& root, const Node* target) {
    std::size_t index = 0;
    std::size_t found = 0;
    dom::preorder(root, [&](const Node& node, std::size_t) {
      ++index;
      if (&node == target) found = index;
      return true;
    });
    return found;
  };
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& [nodeA, nodeB] : mapping.pairs) {
    pairs.emplace_back(preorderIndex(*treeA, nodeA),
                       preorderIndex(*treeB, nodeB) + 14);  // N15 offset
  }
  std::sort(pairs.begin(), pairs.end());
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {1, 15}, {2, 16}, {5, 17}, {6, 18}, {7, 19}, {11, 20}, {12, 22}};
  EXPECT_EQ(pairs, expected);
}

TEST(Stm, DifferentRootsNoMatch) {
  EXPECT_EQ(simpleTreeMatching(*buildTree("a(b)"), *buildTree("b(b)")), 0u);
}

TEST(Stm, IdenticalTreeMatchesAllNodes) {
  auto tree = buildTree("a(b(c,d),e(f))");
  EXPECT_EQ(simpleTreeMatching(*tree, *tree), tree->subtreeSize());
}

TEST(Stm, SingleNodeTrees) {
  EXPECT_EQ(simpleTreeMatching(*buildTree("a"), *buildTree("a")), 1u);
  EXPECT_EQ(simpleTreeMatching(*buildTree("a"), *buildTree("a(b,c)")), 1u);
}

TEST(Stm, OrderSensitivity) {
  // STM respects sibling order: a(b,c) vs a(c,b) can match only root + one
  // child (the LCS of the child sequences).
  EXPECT_EQ(simpleTreeMatching(*buildTree("a(b,c)"), *buildTree("a(c,b)")),
            2u);
}

TEST(Stm, IsSymmetric) {
  auto treeA = buildTree("a(b(c,d),e,f(g))");
  auto treeB = buildTree("a(b(d),f(g,h),e)");
  EXPECT_EQ(simpleTreeMatching(*treeA, *treeB),
            simpleTreeMatching(*treeB, *treeA));
}

TEST(Stm, SimilarityIdenticalIsOne) {
  auto tree = buildTree("a(b,c(d))");
  EXPECT_DOUBLE_EQ(stmSimilarity(*tree, *tree), 1.0);
}

TEST(Stm, SimilarityDisjointIsZero) {
  EXPECT_DOUBLE_EQ(stmSimilarity(*buildTree("a"), *buildTree("b")), 0.0);
}

// --- RSTM ---------------------------------------------------------------------

TEST(Rstm, SelfComparisonEqualsRestrictedCount) {
  // N(A, l) = RSTM(A, A, l) — the identity Section 4.1.4 relies on.
  auto document = html::parseHtml(
      "<body><div><section><h2>t</h2><p>x</p><div><ul><li>a</li>"
      "<li>b</li></ul></div></section><section><p>y</p></section>"
      "</div></body>");
  const dom::Node& body = comparisonRoot(*document);
  for (int level = 1; level <= 8; ++level) {
    EXPECT_EQ(restrictedSimpleTreeMatching(body, body, level),
              countRestrictedNodes(body, level))
        << "level " << level;
  }
}

TEST(Rstm, LeafPairsDoNotCount) {
  // b and c are leaves: only the root pair counts... and the root counts
  // itself only because it is non-leaf and visible.
  EXPECT_EQ(restrictedSimpleTreeMatching(*buildTree("a(b,c)"),
                                         *buildTree("a(b,c)"), 10),
            1u);
}

TEST(Rstm, LevelRestrictionCutsDeepNodes) {
  auto deep = buildTree("a(b(c(d(e(f(g))))))");
  // Levels: a=1, b=2, c=3, d=4, e=5, f=6 (g is a leaf anyway).
  EXPECT_EQ(restrictedSimpleTreeMatching(*deep, *deep, 3), 3u);  // a,b,c
  EXPECT_EQ(restrictedSimpleTreeMatching(*deep, *deep, 5), 5u);
  EXPECT_EQ(countRestrictedNodes(*deep, 3), 3u);
}

TEST(Rstm, DeepDifferencesInvisibleAtLowLevel) {
  // The two trees differ only below level 3 — with maxLevel 3 they are
  // indistinguishable (the leaf-noise immunity the level parameter buys).
  auto treeA = buildTree("a(b(c(d(x,y),e)),f(g))");
  auto treeB = buildTree("a(b(c(d(z),e)),f(g))");
  EXPECT_EQ(restrictedSimpleTreeMatching(*treeA, *treeB, 3),
            restrictedSimpleTreeMatching(*treeA, *treeA, 3));
  EXPECT_DOUBLE_EQ(nTreeSim(*treeA, *treeB, 3), 1.0);
}

TEST(Rstm, NonVisualNodesExcluded) {
  auto document = html::parseHtml(
      "<body><div><script>x()</script><p>text</p></div></body>");
  const dom::Node& body = comparisonRoot(*document);
  // Counted: body, div, p — script is non-visual, text nodes are leaves.
  EXPECT_EQ(countRestrictedNodes(body, 5), 3u);
}

TEST(Rstm, CommentsExcluded) {
  auto withComment =
      html::parseHtml("<body><div><!--x--><p>t</p></div></body>");
  auto without = html::parseHtml("<body><div><p>t</p></div></body>");
  EXPECT_DOUBLE_EQ(
      nTreeSim(comparisonRoot(*withComment), comparisonRoot(*without), 5),
      1.0);
}

TEST(Rstm, DifferentRootSymbolsScoreZero) {
  EXPECT_EQ(
      restrictedSimpleTreeMatching(*buildTree("a(b(c))"), *buildTree("b(b(c))"), 5),
      0u);
}

// --- NTreeSim ------------------------------------------------------------------

TEST(NTreeSim, IdenticalTreesScoreOne) {
  auto document = html::parseHtml(
      "<body><div><section><p>a</p></section></div></body>");
  const dom::Node& body = comparisonRoot(*document);
  EXPECT_DOUBLE_EQ(nTreeSim(body, body, 5), 1.0);
}

TEST(NTreeSim, BothTrivialTreesScoreOne) {
  // Two bodies with nothing countable: defined as similarity 1.
  auto emptyA = html::parseHtml("<body></body>");
  auto emptyB = html::parseHtml("<body></body>");
  EXPECT_DOUBLE_EQ(
      nTreeSim(comparisonRoot(*emptyA), comparisonRoot(*emptyB), 5), 1.0);
}

TEST(NTreeSim, StructuralRemovalLowersSimilarity) {
  auto full = html::parseHtml(
      "<body><div><nav><ul><li>a</li></ul></nav><main><section><p>x</p>"
      "</section><section><p>y</p></section></main></div></body>");
  auto gutted = html::parseHtml(
      "<body><div><main><section><p>y</p></section></main></div></body>");
  const double sim =
      nTreeSim(comparisonRoot(*full), comparisonRoot(*gutted), 5);
  EXPECT_LT(sim, 0.85);
  EXPECT_GT(sim, 0.0);
}

TEST(NTreeSim, BoundedZeroOne) {
  const char* pages[] = {
      "<body><div><p>a</p></div></body>",
      "<body><table><tr><td>x</td></tr></table></body>",
      "<body></body>",
      "<body><div><div><div><div><p>deep</p></div></div></div></div></body>",
  };
  for (const char* pageA : pages) {
    for (const char* pageB : pages) {
      auto docA = html::parseHtml(pageA);
      auto docB = html::parseHtml(pageB);
      const double sim =
          nTreeSim(comparisonRoot(*docA), comparisonRoot(*docB), 5);
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0);
    }
  }
}

TEST(NTreeSim, SymmetricMetric) {
  auto docA = html::parseHtml(
      "<body><div><section><p>a</p></section><aside><ul><li>l</li></ul>"
      "</aside></div></body>");
  auto docB = html::parseHtml(
      "<body><div><section><p>a</p><p>b</p></section></div></body>");
  EXPECT_DOUBLE_EQ(nTreeSim(comparisonRoot(*docA), comparisonRoot(*docB), 5),
                   nTreeSim(comparisonRoot(*docB), comparisonRoot(*docA), 5));
}

TEST(ComparisonRoot, PrefersBody) {
  auto document = html::parseHtml("<body><p>x</p></body>");
  EXPECT_EQ(comparisonRoot(*document).name(), "body");
}

// Parameterized sweep: the restricted count is monotone in the level and
// never exceeds the visible non-leaf node population.
class RstmLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(RstmLevelSweep, CountMonotoneInLevel) {
  const int level = GetParam();
  auto document = html::parseHtml(
      "<body><div><main><section><h2>a</h2><div><ul><li><a>x</a></li>"
      "</ul></div></section><section><p>b</p><div><div><div><p>deep</p>"
      "</div></div></div></section></main></div></body>");
  const dom::Node& body = comparisonRoot(*document);
  EXPECT_LE(countRestrictedNodes(body, level),
            countRestrictedNodes(body, level + 1));
  EXPECT_EQ(restrictedSimpleTreeMatching(body, body, level),
            countRestrictedNodes(body, level));
}

INSTANTIATE_TEST_SUITE_P(Levels, RstmLevelSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12));

}  // namespace
}  // namespace cookiepicker::core
