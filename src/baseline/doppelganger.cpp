#include "baseline/doppelganger.h"

#include <algorithm>

#include "dom/serialize.h"
#include "html/parser.h"

namespace cookiepicker::baseline {

Doppelganger::Doppelganger(browser::Browser& browser, net::Network& network,
                           UserOracle oracle)
    : browser_(browser), network_(network), oracle_(std::move(oracle)) {}

void Doppelganger::onPageView(const browser::PageView& view) {
  ++stats_.pageViews;

  const std::uint64_t requestsBefore = network_.totalRequests();
  const std::uint64_t bytesBefore = network_.totalBytesTransferred();

  // Fork window: the container page without persistent cookies...
  browser::HiddenFetchResult fork = browser_.hiddenFetch(
      view,
      [](const cookies::CookieRecord& record) { return record.persistent; });
  stats_.mirrorLatencyMs += fork.latencyMs;

  // Doppelganger diffs serialized node trees, so it needs real documents.
  // Streaming-mode fetches carry only snapshots; re-parse the retained HTML
  // the same way the reference pipeline would have.
  std::unique_ptr<dom::Node> forkParsed;
  const dom::Node* forkDocument = fork.document.get();
  if (forkDocument == nullptr) {
    forkParsed = html::parseHtml(fork.html);
    forkDocument = forkParsed.get();
  }
  std::unique_ptr<dom::Node> viewParsed;
  const dom::Node* viewDocument = view.document.get();
  if (viewDocument == nullptr) {
    viewParsed = html::parseHtml(view.containerHtml);
    viewDocument = viewParsed.get();
  }

  // ...plus, unlike CookiePicker, every embedded object of the fork copy.
  if (forkDocument != nullptr) {
    double batchMs = 0.0;
    int inBatch = 0;
    double totalMs = 0.0;
    dom::preorder(*forkDocument, [&](const dom::Node& node, std::size_t) {
      if (!node.isElement()) return true;
      std::optional<std::string> reference;
      if (node.name() == "img" || node.name() == "script") {
        reference = node.attribute("src");
      } else if (node.name() == "link") {
        reference = node.attribute("href");
      }
      if (reference.has_value() && !reference->empty()) {
        net::HttpRequest request;
        request.url = view.url.resolve(*reference);
        request.headers.set("User-Agent", "DoppelgangerFork/1.0");
        const net::Exchange exchange = network_.dispatch(request);
        batchMs = std::max(batchMs, exchange.latencyMs);
        if (++inBatch == browser::Browser::kParallelConnections) {
          totalMs += batchMs;
          batchMs = 0.0;
          inBatch = 0;
        }
      }
      return true;
    });
    totalMs += batchMs;
    stats_.mirrorLatencyMs += totalMs;
  }

  stats_.mirroredRequests += network_.totalRequests() - requestsBefore;
  stats_.mirroredBytes += network_.totalBytesTransferred() - bytesBefore;

  // Any difference between the serialized windows triggers a user prompt.
  const std::string mainHtml = dom::toHtml(*viewDocument);
  const std::string forkHtml =
      forkDocument != nullptr ? dom::toHtml(*forkDocument) : std::string();
  if (mainHtml != forkHtml) {
    ++stats_.userPrompts;
    if (oracle_(mainHtml, forkHtml)) {
      for (const cookies::CookieKey& key : fork.strippedCookies) {
        if (browser_.jar().markUseful(key)) ++stats_.cookiesKeptUseful;
      }
    }
  }
}

}  // namespace cookiepicker::baseline
