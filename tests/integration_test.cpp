// End-to-end experiments at reduced scale: miniature versions of the
// paper's two evaluation campaigns, checking the *shape* of the published
// results — classification outcomes, error structure, and timing ordering.
#include <gtest/gtest.h>

#include <map>

#include "core/cookie_picker.h"
#include "server/generator.h"
#include "test_support.h"

namespace cookiepicker {
namespace {

using core::CookiePicker;
using core::CookiePickerConfig;
using server::SiteSpec;
using testsupport::SimWorld;

// Crawls `views` page views on a site through the picker, rotating paths.
void crawlSite(CookiePicker& picker, const SiteSpec& spec, int views) {
  for (int i = 0; i < views; ++i) {
    const std::string path =
        i % spec.pageCount == 0
            ? "/"
            : "/page" + std::to_string(i % spec.pageCount);
    picker.browse("http://" + spec.domain + path);
  }
}

struct SiteOutcome {
  int persistent = 0;
  int marked = 0;
  int realUseful = 0;
};

SiteOutcome runSite(SimWorld& world, CookiePicker& picker,
                    const SiteSpec& spec, int views) {
  crawlSite(picker, spec, views);
  SiteOutcome outcome;
  const auto usefulNames = spec.usefulCookieNames();
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    ++outcome.persistent;
    if (record->useful) ++outcome.marked;
  }
  outcome.realUseful = spec.totalUseful();
  return outcome;
}

TEST(Integration, Table1ShapeHolds) {
  // The full 30-site roster with a 25-view crawl per site, as in §5.2.1.
  SimWorld world(2026);
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 25;
  CookiePicker picker(world.browser, config);

  std::map<std::string, SiteOutcome> outcomes;
  int totalPersistent = 0;
  int totalMarked = 0;
  for (const SiteSpec& spec : server::table1Roster()) {
    world.addSite(spec);
    const SiteOutcome outcome = runSite(world, picker, spec, 26);
    outcomes[spec.label] = outcome;
    totalPersistent += outcome.persistent;
    totalMarked += outcome.marked;
  }

  EXPECT_EQ(totalPersistent, 103);

  // Ground-truth useful sites are fully detected.
  EXPECT_EQ(outcomes["S6"].marked, 2);
  EXPECT_EQ(outcomes["S16"].marked, 1);

  // The heavy-dynamics sites produce false "useful" marks (the paper's
  // S1/S10/S27 error), and nothing else does.
  EXPECT_EQ(outcomes["S1"].marked, 2);
  EXPECT_EQ(outcomes["S10"].marked, 1);
  EXPECT_EQ(outcomes["S27"].marked, 1);
  for (const auto& [label, outcome] : outcomes) {
    if (label == "S1" || label == "S6" || label == "S10" ||
        label == "S16" || label == "S27") {
      continue;
    }
    EXPECT_EQ(outcome.marked, 0) << label;
  }

  // 25 of 30 sites end with every persistent cookie disabled (83.3%).
  int fullyDisabled = 0;
  for (const auto& [label, outcome] : outcomes) {
    if (outcome.marked == 0) ++fullyDisabled;
  }
  EXPECT_EQ(fullyDisabled, 25);

  // Zero missed useful cookies → no backward error recovery needed.
  EXPECT_EQ(picker.recovery().recoveryCount(), 0);
}

TEST(Integration, Table2ShapeHolds) {
  SimWorld world(7);
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 25;
  CookiePicker picker(world.browser, config);

  const std::map<std::string, int> expectedMarked = {
      {"P1", 1}, {"P2", 1}, {"P3", 1}, {"P4", 1}, {"P5", 9}, {"P6", 5}};
  const std::map<std::string, int> expectedReal = {
      {"P1", 1}, {"P2", 1}, {"P3", 1}, {"P4", 1}, {"P5", 1}, {"P6", 2}};

  for (const SiteSpec& spec : server::table2Roster()) {
    world.addSite(spec);
    const SiteOutcome outcome = runSite(world, picker, spec, 26);
    EXPECT_EQ(outcome.marked, expectedMarked.at(spec.label)) << spec.label;
    EXPECT_EQ(outcome.realUseful, expectedReal.at(spec.label)) << spec.label;
    // Every truly useful cookie is among the marked ones (no misses).
    for (const std::string& name : spec.usefulCookieNames()) {
      bool found = false;
      for (const cookies::CookieRecord* record :
           world.browser.jar().persistentCookiesForHost(spec.domain)) {
        if (record->key.name == name) {
          EXPECT_TRUE(record->useful) << spec.label << ":" << name;
          found = true;
        }
      }
      EXPECT_TRUE(found) << spec.label << ":" << name;
    }
  }
  EXPECT_EQ(picker.recovery().recoveryCount(), 0);
}

TEST(Integration, Table2SimilaritiesFarBelowThreshold) {
  // §5.2.2: on the views where useful cookies are detected, both
  // similarity scores sit far below 0.85 (paper averages 0.418 / 0.521).
  SimWorld world(9);
  CookiePicker picker(world.browser);
  for (const SiteSpec& spec : server::table2Roster()) {
    world.addSite(spec);
    picker.browse("http://" + spec.domain + "/");  // seeds cookies
    const auto report = picker.browse("http://" + spec.domain + "/");
    ASSERT_TRUE(report.hiddenRequestSent) << spec.label;
    ASSERT_TRUE(report.decision.causedByCookies) << spec.label;
    EXPECT_LT(report.decision.treeSim, 0.85) << spec.label;
    EXPECT_LT(report.decision.textSim, 0.85) << spec.label;
  }
}

TEST(Integration, SlowSitesDominateDurationTail) {
  // §5.2.1: S4/S17/S28 showed ~10 s identification durations caused by slow
  // responses; duration ordering must hold between slow and fast sites.
  SimWorld world(5);
  CookiePicker picker(world.browser);
  const auto roster = server::table1Roster();
  const SiteSpec slow = roster[3];    // S4
  const SiteSpec typical = roster[1]; // S2
  world.addSite(slow);
  world.addSite(typical);
  crawlSite(picker, slow, 8);
  crawlSite(picker, typical, 8);
  EXPECT_GT(picker.report(slow.domain).averageDurationMs,
            picker.report(typical.domain).averageDurationMs);
}

TEST(Integration, DurationFitsInsideThinkTime) {
  // The design argument of §3.2: the whole identification runs during user
  // think time (mean > 10 s).
  SimWorld world(6);
  CookiePicker picker(world.browser);
  const SiteSpec spec = world.addSite(server::table1Roster()[1]);  // typical
  crawlSite(picker, spec, 10);
  EXPECT_LT(picker.report(spec.domain).averageDurationMs, 10'000.0);
}

TEST(Integration, EnforcementSurvivesBrowserRestart) {
  // Persistent cookies and their useful marks survive a session restart
  // (serialize/deserialize), so enforcement decisions carry over.
  SimWorld world(11);
  CookiePicker picker(world.browser);
  const SiteSpec spec = world.addSite(server::table2Roster()[0]);  // P1
  crawlSite(picker, spec, 6);

  const std::string saved = world.browser.jar().serialize();
  cookies::CookieJar restored = cookies::CookieJar::deserialize(saved);
  bool prefUseful = false;
  for (const cookies::CookieRecord* record :
       restored.persistentCookiesForHost(spec.domain)) {
    if (record->key.name == "prefstyle" && record->useful) prefUseful = true;
  }
  EXPECT_TRUE(prefUseful);
}

TEST(Integration, ThirdPartyCookiesNeverStored) {
  // The recommended policy (Section 2) blocks third-party cookies; verify
  // across a crawl that every stored cookie is first-party.
  SimWorld world(13);
  CookiePicker picker(world.browser);
  const SiteSpec spec = world.addSite(server::table1Roster()[0]);
  crawlSite(picker, spec, 5);
  for (const cookies::CookieRecord* record : world.browser.jar().all()) {
    EXPECT_TRUE(record->firstParty);
  }
}

}  // namespace
}  // namespace cookiepicker
