#include "fleet/aggregate.h"

#include "net/network.h"
#include "server/site.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cookiepicker::fleet {

namespace {

// Per-(fleet, round) seed: every round is a fresh user population, every
// fleet an independent user, but the whole schedule is a pure function of
// the base seed.
std::uint64_t fleetSeed(std::uint64_t base, int fleet, int round) {
  std::string key = "fleet-";
  util::appendParts(key, {std::to_string(fleet), "-round-",
                          std::to_string(round)});
  return base ^ util::fnv1a64(key);
}

}  // namespace

KnowledgeFleetReport runKnowledgeFleets(
    const std::vector<server::SiteSpec>& roster,
    const KnowledgeFleetConfig& config,
    knowledge::KnowledgeBase* sharedBase) {
  KnowledgeFleetReport report;
  const int fleets = std::max(1, config.fleets);
  const int rounds = std::max(1, config.rounds);

  // One replica per fleet (noncopyable: each owns shard mutexes).
  std::vector<std::unique_ptr<knowledge::KnowledgeBase>> replicas;
  replicas.reserve(static_cast<std::size_t>(fleets));
  for (int fleet = 0; fleet < fleets; ++fleet) {
    replicas.push_back(std::make_unique<knowledge::KnowledgeBase>());
  }

  for (int round = 0; round < rounds; ++round) {
    // Train fleets sequentially (index order): each gets a fresh sim
    // network so fleets never share server-side state, and workers
    // parallelize inside the fleet only. Replica updates are joins, so the
    // worker scheduling inside a fleet cannot change the replica's value.
    for (int fleet = 0; fleet < fleets; ++fleet) {
      FleetConfig fleetConfig = config.base;
      fleetConfig.seed = fleetSeed(config.base.seed, fleet, round);
      fleetConfig.knowledge = replicas[static_cast<std::size_t>(fleet)].get();
      util::SimClock serverClock;
      net::Network network(fleetConfig.seed);
      server::registerRoster(network, serverClock, roster);
      if (config.faultPlan != nullptr) network.setFaultPlan(config.faultPlan);
      TrainingFleet trainingFleet(network, fleetConfig);
      const FleetReport fleetReport = trainingFleet.run(roster);

      FleetRoundStats stats;
      stats.round = round;
      stats.fleet = fleet;
      stats.pagesVisited = fleetReport.pagesVisited;
      stats.hiddenRequests = fleetReport.hiddenRequests;
      if (fleetConfig.collectObservability) {
        const obs::MetricsSnapshot merged = fleetReport.mergedMetrics();
        // The report's hiddenRequests echoes imported crowd counters for
        // warm hosts (importSharedSite max-joins them into the site state);
        // the session-scoped fetch counter is the honest wire count, and
        // the whole point here is watching it decay as knowledge spreads.
        stats.hiddenRequests = merged.counter(obs::Counter::HiddenFetches);
        stats.knowledgeHits = merged.counter(obs::Counter::KnowledgeHits);
        stats.knowledgeMisses = merged.counter(obs::Counter::KnowledgeMisses);
      }
      report.totalHiddenRequests += stats.hiddenRequests;
      report.totalPagesVisited += stats.pagesVisited;
      report.rounds.push_back(stats);
    }

    // Gossip: joins along the topology, in a fixed documented order.
    switch (config.topology) {
      case GossipTopology::None:
        break;
      case GossipTopology::Ring:
        for (int fleet = 0; fleet < fleets; ++fleet) {
          replicas[static_cast<std::size_t>(fleet)]->mergeFrom(
              *replicas[static_cast<std::size_t>((fleet + 1) % fleets)]);
        }
        break;
      case GossipTopology::Star:
        for (int fleet = 1; fleet < fleets; ++fleet) {
          replicas[0]->mergeFrom(*replicas[static_cast<std::size_t>(fleet)]);
        }
        for (int fleet = 1; fleet < fleets; ++fleet) {
          replicas[static_cast<std::size_t>(fleet)]->mergeFrom(*replicas[0]);
        }
        break;
      case GossipTopology::AllToAll: {
        knowledge::KnowledgeBase join;
        for (const auto& replica : replicas) join.mergeFrom(*replica);
        for (const auto& replica : replicas) replica->mergeFrom(join);
        break;
      }
    }
  }

  knowledge::KnowledgeBase merged;
  for (const auto& replica : replicas) {
    report.replicaKnowledge.push_back(replica->serialize());
    merged.mergeFrom(*replica);
  }
  report.mergedKnowledge = merged.serialize();
  if (sharedBase != nullptr) sharedBase->mergeFrom(merged);
  return report;
}

}  // namespace cookiepicker::fleet
