// A rendered page view: what the regular browsing window holds after a page
// load, and what CookiePicker's step one records (container URI + headers).
#pragma once

#include <memory>
#include <vector>

#include "dom/node.h"
#include "dom/snapshot.h"
#include "net/http.h"
#include "provenance/taint.h"
#include "util/clock.h"

namespace cookiepicker::browser {

struct FetchTiming {
  double containerLatencyMs = 0.0;     // container request round trip
  double subresourceLatencyMs = 0.0;   // wall time of the object fetch phase
  int subresourceCount = 0;
  int redirectCount = 0;
  double totalLoadMs = 0.0;            // container + subresources
};

struct PageView {
  // Final URL after following redirects — the "real initial container
  // document page" of Section 3.2, step one.
  net::Url url;
  // The container request exactly as sent (URI and header information saved
  // for replay as the hidden request).
  net::HttpRequest containerRequest;
  // The regular DOM tree. Only populated in DomMode::Reference; the
  // streaming pipeline (the default) never builds it, and consumers that
  // need a node tree re-parse `containerHtml` lazily.
  std::unique_ptr<dom::Node> document;
  // Flattened detection view of the container page, built once at parse
  // time and reused by every FORCUM step over this view (shared so reports
  // and copies of the view alias one snapshot).
  std::shared_ptr<const dom::TreeSnapshot> snapshot;
  // Raw container HTML (kept for baselines that diff serialized text).
  std::string containerHtml;
  // Byte-range → cookie-label map for `containerHtml`, decoded from the
  // origin's X-Cookie-Provenance header. Null unless the browser asked for
  // provenance and the origin answered with a well-formed map.
  std::shared_ptr<const provenance::ProvenanceMap> provenance;
  std::vector<net::Url> subresources;
  FetchTiming timing;
  util::SimTimeMs loadedAtMs = 0;
  int status = 0;
};

}  // namespace cookiepicker::browser
