// Streaming tokenizer→snapshot pipeline.
//
// StreamingSnapshotBuilder produces the exact dom::TreeSnapshot that
// `parseHtml` + `TreeSnapshot(const Node&)` would, directly from the token
// stream, never materializing a dom::Node. The open-tag stack mirrors the
// TreeBuilder's placement rules (implicit html/head/body skeleton, head
// content before <body>, optional-end-tag closing, whitespace dropping,
// adjacent text merging) and emits preorder rows inline: because the
// builder only ever appends to the rightmost spine of the growing tree,
// emission order *is* preorder order, so each row's index is final the
// moment its start tag (or text/comment token) arrives. Three things cannot
// be known at emission time and are patched later, by index:
//
//  * subtree extents — finalized to the current row count when an element
//    is popped (implicitly, by end tag, or at EOF);
//  * merged text content — adjacent text tokens append to the row's pending
//    buffer until a sibling arrives; flags and the FNV-1a-64 hash are
//    computed from the full merged value in one EOF pass;
//  * html/head/body ad-container flags — duplicated structural tags merge
//    attributes first-wins, so class/id are accumulated and flagged at EOF.
//
// Child spans and the comparison root come from the same
// TreeSnapshot::finish() pass the reference constructor uses. The
// differential fuzz suite (tests/snapshot_differential_test.cpp) asserts
// the two producers' arrays are byte-identical across seeded random and
// mutated documents; the dom::Node path stays available behind
// DecisionConfig::useSnapshotFastPath as the testing reference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dom/interner.h"
#include "dom/snapshot.h"
#include "html/parser.h"
#include "html/tokenizer.h"
#include "provenance/taint.h"

namespace cookiepicker::html {

// What the browser needs from a page besides the snapshot, collected during
// the same streaming pass: the effective <base href> and the raw subresource
// references (img/script/iframe/embed src, stylesheet link href) in preorder.
// References are unresolved strings — URL resolution needs the document URL,
// which is the browser's business.
struct StreamPageInfo {
  // First <base> element's non-empty href; empty when the document URL is
  // the base (no <base>, or its href is missing/empty).
  std::string baseHref;
  std::vector<std::string> subresourceRefs;
};

struct StreamParseResult {
  std::shared_ptr<const dom::TreeSnapshot> snapshot;
  StreamPageInfo page;
};

class StreamingSnapshotBuilder {
 public:
  StreamingSnapshotBuilder();

  // Tokenizes `htmlText` and builds snapshot + page info in one pass.
  // Scratch state (token buffers, open stack, text accumulators, per-tag
  // info cache) lives on the builder and is reused across calls, so a
  // retained builder's steady-state allocations are the snapshot arrays
  // themselves plus interner misses.
  //
  // When `provenance` is non-null, every token-driven row is stamped with
  // the label-set effective at the token's source byte (one interval lookup
  // per row, no allocation — the bit-vector is its own interning); synthetic
  // skeleton rows stamp 0. Without a map, rows pay a single branch and the
  // snapshot carries no taint vector at all.
  StreamParseResult build(std::string_view htmlText,
                          const ParseOptions& options = {},
                          const provenance::ProvenanceMap* provenance =
                              nullptr);

 private:
  // Optional-end-tag rules as bit tests: an open element is implicitly
  // closed when (incoming.closeMask & open.openClass) != 0. Encodes
  // parser.cpp's impliesEndOf; the differential suite pins the equivalence.
  enum ClassBit : std::uint8_t {
    kClassP = 1U << 0,
    kClassLi = 1U << 1,
    kClassDtDd = 1U << 2,
    kClassOption = 1U << 3,
    kClassCell = 1U << 4,     // td/th
    kClassRow = 1U << 5,      // tr
    kClassSection = 1U << 6,  // thead/tbody/tfoot
  };

  // Everything the builder needs to know about a tag, computed once per
  // distinct tag name and cached by symbol ID.
  struct TagInfo {
    bool known = false;
    bool isVoid = false;
    bool headPlacement = false;  // head-content tags + script
    bool headRawText = false;    // title/style/script (parser's head check)
    bool rawTextTag = false;     // + textarea
    bool preformatted = false;   // pre/textarea
    bool scriptish = false;      // script/style/noscript
    bool isOption = false;
    bool nonVisual = false;
    std::uint8_t structural = 0;  // 1 html, 2 head, 3 body
    std::uint8_t resource = 0;    // 1 src carrier, 2 link, 3 base
    std::uint8_t openClass = 0;
    std::uint8_t closeMask = 0;
  };

  // An element on the open stack. Copies the TagInfo bits it needs —
  // infoBySymbol_ may reallocate when a new tag is interned mid-document,
  // so holding a TagInfo pointer across pushes would dangle.
  struct Open {
    std::uint32_t row = 0;
    dom::SymbolId symbol = 0;
    std::int32_t level = 0;
    std::int64_t lastTextSlot = -1;  // textRows_ slot, -1: last child not text
    std::uint8_t openClass = 0;
    bool rawTextTag = false;
    bool headRawText = false;
    bool preformatted = false;
  };

  // One of the implicit structural elements (document/html/head/body).
  struct Frame {
    std::int64_t row = -1;
    std::int64_t lastTextSlot = -1;
    bool hasClass = false;
    bool hasId = false;
    std::string classValue;
    std::string idValue;
  };

  const TagInfo& tagInfo(dom::SymbolId symbol, const std::string& name);

  // Direct-mapped cache in front of the global symbol interner. The global
  // interner is thread-safe (shared_mutex + string hash) and every start and
  // end tag used to pay that cost; a page uses a couple dozen distinct tag
  // names, so a tiny per-builder cache keyed by a two-byte-and-length hash
  // turns almost every intern into one index plus one short string compare,
  // no lock. Collisions simply fall through to the global interner (and
  // take over the slot), so the returned IDs are always the global ones.
  dom::SymbolId localSymbol(const std::string& name);

  std::uint32_t rowCount() const;
  std::uint32_t emitRow(dom::SymbolId symbol, std::int32_t level,
                        std::uint16_t flags,
                        provenance::TaintSetId taint = 0);
  // Label-set effective at the current token's source byte; 0 without a map.
  provenance::TaintSetId tokenTaint() const;
  void processStartTag();
  void processEndTag();
  void processText();
  void processComment();
  void processDoctype();
  void appendTextTo(std::int64_t& lastTextSlot, std::int32_t parentLevel);
  void recordReferences(const TagInfo& info);
  void mergeStructuralAttributes(Frame& frame);
  void finalizeStructuralFlags(const Frame& frame);
  void finalizeTextRows();
  void resetFrame(Frame& frame);
  void ensureHtml();
  void ensureHead();
  void ensureBody();
  void pushOpen(std::uint32_t row, dom::SymbolId symbol, const TagInfo& info,
                std::int32_t level);
  void popOpen();

  // Cached symbols for the rows every document emits.
  dom::SymbolId documentSymbol_;
  dom::SymbolId textSymbol_;
  dom::SymbolId commentSymbol_;
  dom::SymbolId htmlSymbol_;
  dom::SymbolId headSymbol_;
  dom::SymbolId bodySymbol_;

  std::vector<TagInfo> infoBySymbol_;

  struct SymbolSlot {
    std::string name;
    dom::SymbolId symbol = 0;
    bool used = false;
  };
  static constexpr std::size_t kSymbolCacheSize = 256;
  // Direct-mapped; persists across builds like infoBySymbol_.
  std::vector<SymbolSlot> symbolCache_ =
      std::vector<SymbolSlot>(kSymbolCacheSize);

  // --- per-build state, reset by build() ---
  dom::TreeSnapshot* snap_ = nullptr;
  StreamPageInfo* page_ = nullptr;
  const ParseOptions* options_ = nullptr;
  const provenance::ProvenanceMap* prov_ = nullptr;
  Token token_;
  Frame document_;
  Frame html_;
  Frame head_;
  Frame body_;
  std::vector<Open> open_;
  int preformattedDepth_ = 0;
  bool sawBase_ = false;
  // Text rows with their accumulated raw (entity-decoded) content. Slots
  // [0, textRowCount_) are live this build; strings keep their capacity.
  std::vector<std::pair<std::uint32_t, std::string>> textRows_;
  std::size_t textRowCount_ = 0;
  std::string collapseScratch_;
};

// Reference twin of the streaming page-info collection, over a parsed tree.
// Used by the reference (dom::Node) browser mode and by the differential
// tests to pin StreamPageInfo against the tree-walking implementation.
StreamPageInfo collectPageInfo(const dom::Node& document);

// One-shot convenience for tests and tools (constructs a fresh builder).
StreamParseResult buildSnapshotStreaming(
    std::string_view htmlText, const ParseOptions& options = {},
    const provenance::ProvenanceMap* provenance = nullptr);

}  // namespace cookiepicker::html
