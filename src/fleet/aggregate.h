// Multi-fleet knowledge aggregation — N independent "users" gossiping what
// their training learned.
//
// Models the crowd half of the shared-knowledge tier: each fleet is one
// simulated user population with its OWN KnowledgeBase replica (users do not
// share memory; they exchange knowledge explicitly), trained in
// deterministic rounds. A round trains every fleet in index order (workers
// parallelize inside a fleet; fleets themselves are sequential, so round
// results are scheduling-independent), then delivers gossip along the
// configured topology in a fixed order. Replicas only ever change by
// SiteKnowledge joins, so *which* schedule ran affects how fast hidden
// requests decay (the convergence curve bench_knowledge plots), while the
// full join of a fixed set of contributions is schedule-independent — the
// lattice-law suite pins that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "fleet/fleet.h"
#include "knowledge/knowledge_base.h"
#include "server/generator.h"

namespace cookiepicker::fleet {

// Gossip delivery pattern for one round. Deliveries are joins, applied in
// the documented fixed order — deterministic by construction.
enum class GossipTopology {
  None,      // no exchange: every fleet trains in isolation
  Ring,      // fleet i joins from fleet (i+1) % N, i ascending
  Star,      // all join into fleet 0, then fleet 0 joins back into all
  AllToAll,  // full join of all replicas, adopted by every fleet
};

struct KnowledgeFleetConfig {
  int fleets = 4;
  int rounds = 2;
  GossipTopology topology = GossipTopology::Ring;
  // Per-fleet template: seed is re-keyed per (fleet, round) so every round
  // models a fresh user population; `knowledge` is overwritten with the
  // fleet's replica.
  FleetConfig base;
  // Fault plan installed on every fleet's network (null = fault-free).
  // Degraded FORCUM steps mark nothing and are quiet-neutral, so faults
  // slow convergence but never poison the shared knowledge — the
  // differential suite pins that.
  std::shared_ptr<const faults::FaultPlan> faultPlan;
};

// Per-(round, fleet) training outcome.
struct FleetRoundStats {
  int round = 0;
  int fleet = 0;
  std::uint64_t pagesVisited = 0;
  // Hidden fetches actually sent on the wire this round. With
  // collectObservability on this comes from the per-session HiddenFetches
  // counter (the fleet report's hiddenRequests echoes imported crowd
  // counters for warm hosts, which would hide the decay being measured).
  std::uint64_t hiddenRequests = 0;
  std::uint64_t knowledgeHits = 0;
  std::uint64_t knowledgeMisses = 0;
};

struct KnowledgeFleetReport {
  std::vector<FleetRoundStats> rounds;
  // Each replica's final serialized knowledge, fleet order.
  std::vector<std::string> replicaKnowledge;
  // The full join of every replica, serialized — byte-identical for any
  // fleet count ordering of the final fold (join order cannot matter).
  std::string mergedKnowledge;
  std::uint64_t totalHiddenRequests = 0;
  std::uint64_t totalPagesVisited = 0;
};

// Trains `config.fleets` independent fleets over `roster` for
// `config.rounds` rounds, gossiping replicas between rounds, and returns
// the per-round stats plus the final merged knowledge. When `sharedBase` is
// non-null the final join is also applied to it (the serve tier's way of
// adopting a gossip run). A fresh sim Network is built per (fleet, round)
// so fleets never share server-side state or latency streams.
KnowledgeFleetReport runKnowledgeFleets(
    const std::vector<server::SiteSpec>& roster,
    const KnowledgeFleetConfig& config,
    knowledge::KnowledgeBase* sharedBase = nullptr);

}  // namespace cookiepicker::fleet
