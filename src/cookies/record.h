// Cookie records.
//
// Mirrors a browser cookie-jar entry, extended with the paper's extra
// per-cookie "useful" field (Section 3.2, step five): it starts false for
// every cookie — including newly appearing ones — and can only move
// false → true during the FORCUM training process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/clock.h"

namespace cookiepicker::cookies {

struct CookieKey {
  std::string name;
  std::string domain;  // lowercase, no leading dot
  std::string path;

  bool operator==(const CookieKey&) const = default;
  auto operator<=>(const CookieKey&) const = default;
};

struct CookieRecord {
  CookieKey key;
  std::string value;

  // hostOnly: cookie had no Domain attribute → sent only to the exact host.
  bool hostOnly = true;
  bool secure = false;
  bool httpOnly = false;

  // Session cookies have no expiry and die with the browser; persistent
  // cookies carry an absolute simulated expiry time.
  bool persistent = false;
  util::SimTimeMs expiryMs = 0;

  util::SimTimeMs creationMs = 0;
  util::SimTimeMs lastAccessMs = 0;

  // Whether this cookie was set by the site being visited (first-party) or
  // by an embedded third-party host, recorded at set time.
  bool firstParty = true;

  // The paper's usefulness mark. Monotone false→true during FORCUM.
  bool useful = false;

  bool isExpired(util::SimTimeMs nowMs) const {
    return persistent && expiryMs <= nowMs;
  }
};

}  // namespace cookiepicker::cookies
