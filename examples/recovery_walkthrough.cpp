// Scenario: backward error recovery (Section 3.3) end to end.
//
// A site's useful cookie only matters on a rarely visited page — FORCUM's
// second kind of error: training stabilizes without ever seeing the page
// where the cookie matters, so the cookie is blocked and the user later
// hits a degraded page. The walkthrough shows the failure, the one-click
// recovery, and training resuming.
//
//   $ ./examples/recovery_walkthrough
#include <cstdio>
#include <memory>

#include "browser/browser.h"
#include "core/cookie_picker.h"
#include "net/network.h"
#include "server/behaviors.h"
#include "server/generator.h"
#include "server/site.h"
#include "util/clock.h"

int main() {
  using namespace cookiepicker;

  util::SimClock clock;
  net::Network network(/*seed=*/99);

  // A site whose preference cookie only affects pages under /account —
  // which the user never visits during training.
  server::SiteConfig config;
  config.domain = "portal.example";
  config.title = "Member Portal";
  config.category = "society";
  config.seed = 55;
  auto site = std::make_shared<server::WebSite>(config, clock);
  site->addBehavior(std::make_unique<server::PreferenceCookieBehavior>(
      "prefstyle", /*intensity=*/2, /*maxAgeSeconds=*/365LL * 86400,
      /*affectedPathPrefix=*/"/account"));
  site->addBehavior(std::make_unique<server::AdRotationNoise>());
  network.registerHost(config.domain, site);

  browser::Browser browser(network, clock);
  core::CookiePickerConfig pickerConfig;
  pickerConfig.forcum.stableViewThreshold = 5;
  pickerConfig.autoEnforce = true;
  core::CookiePicker picker(browser, pickerConfig);

  std::printf("=== Training on the public pages only ===\n");
  for (int i = 0; i < 9; ++i) {
    picker.browse("http://portal.example/page" + std::to_string(i + 1));
  }
  std::printf("training active: %s, enforced: %s\n",
              picker.forcum().isTrainingActive("portal.example") ? "yes"
                                                                 : "no",
              picker.isEnforced("portal.example") ? "yes" : "no");
  std::printf("prefstyle was marked useful: %s (the error: its page was "
              "never visited)\n\n",
              [&] {
                for (const auto* record :
                     browser.jar().persistentCookiesForHost(
                         "portal.example")) {
                  if (record->key.name == "prefstyle") {
                    return record->useful ? "yes" : "no";
                  }
                }
                return "cookie already deleted";
              }());

  std::printf("=== The user visits /account and sees a degraded page ===\n");
  auto view = browser.visit("http://portal.example/account/settings");
  const bool personalized =
      view.containerHtml.find("Welcome back") != std::string::npos;
  std::printf("personalized content present: %s\n\n",
              personalized ? "yes" : "no  <-- malfunction the user notices");

  std::printf("=== One click on the recovery button ===\n");
  const auto remarked = picker.pressRecoveryButton(view.url);
  std::printf("cookies re-marked useful: %zu; training resumed: %s\n\n",
              remarked.size(),
              picker.forcum().isTrainingActive("portal.example") ? "yes"
                                                                 : "no");

  std::printf("=== The next visit works again ===\n");
  view = browser.visit("http://portal.example/account/settings");
  const bool fixed =
      view.containerHtml.find("Welcome back") != std::string::npos;
  std::printf("personalized content present: %s\n", fixed ? "yes" : "no");
  return 0;
}
