
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/behaviors.cpp" "src/server/CMakeFiles/cp_server.dir/behaviors.cpp.o" "gcc" "src/server/CMakeFiles/cp_server.dir/behaviors.cpp.o.d"
  "/root/repo/src/server/evasion.cpp" "src/server/CMakeFiles/cp_server.dir/evasion.cpp.o" "gcc" "src/server/CMakeFiles/cp_server.dir/evasion.cpp.o.d"
  "/root/repo/src/server/fragments.cpp" "src/server/CMakeFiles/cp_server.dir/fragments.cpp.o" "gcc" "src/server/CMakeFiles/cp_server.dir/fragments.cpp.o.d"
  "/root/repo/src/server/generator.cpp" "src/server/CMakeFiles/cp_server.dir/generator.cpp.o" "gcc" "src/server/CMakeFiles/cp_server.dir/generator.cpp.o.d"
  "/root/repo/src/server/p3p.cpp" "src/server/CMakeFiles/cp_server.dir/p3p.cpp.o" "gcc" "src/server/CMakeFiles/cp_server.dir/p3p.cpp.o.d"
  "/root/repo/src/server/site.cpp" "src/server/CMakeFiles/cp_server.dir/site.cpp.o" "gcc" "src/server/CMakeFiles/cp_server.dir/site.cpp.o.d"
  "/root/repo/src/server/words.cpp" "src/server/CMakeFiles/cp_server.dir/words.cpp.o" "gcc" "src/server/CMakeFiles/cp_server.dir/words.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dom/CMakeFiles/cp_dom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
