// Differential properties of the detection fast path: the snapshot/interned
// implementations of RSTM, CVCE, and the decision algorithm must return
// *bit-identical* results to the dom::Node reference implementations, on
// thousands of seeded random tree pairs rich enough to exercise every noise
// filter and restriction. A failure prints the seed, so any divergence is
// reproducible offline.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cvce.h"
#include "core/decision.h"
#include "core/rstm.h"
#include "dom/interner.h"
#include "dom/node.h"
#include "dom/serialize.h"
#include "dom/snapshot.h"
#include "html/parser.h"
#include "util/rng.h"

namespace cookiepicker {
namespace {

using dom::Node;

// --- generators --------------------------------------------------------------

// Tags chosen to hit every snapshot predicate: visible structure, the
// script/style/noscript filter, <option> text, and plain containers.
constexpr const char* kTags[] = {"div",  "p",    "span",   "table", "tr",
                                 "td",   "ul",   "li",     "a",     "b",
                                 "form", "h1",   "select", "option", "script",
                                 "style"};

// Attribute values that straddle the ad-token boundary: some trip the
// class/id heuristic ("ad", "ads banner"), some only look like they might
// ("download", "shadow", "radar").
constexpr const char* kClassValues[] = {"content", "header",   "ad",
                                        "ads banner", "sidebar promo",
                                        "main",    "download", "shadow",
                                        "radar",   "top-ad"};

// Text spanning the CVCE noise rules: plain words, date/time-like strings,
// pure punctuation, whitespace-only, and strings needing collapsing.
constexpr const char* kTexts[] = {
    "breaking news",   "hello world", "2007-01-17", "12:30:05",
    "***",             "   ",         "a  b\t c",   "Weather: sunny",
    "01/17/2007",      "- - -",       "x",          "today 12:30:05 update",
};

std::unique_ptr<Node> richRandomTree(util::Pcg32& rng, int maxDepth,
                                     int maxChildren) {
  auto node = Node::makeElement(kTags[rng.uniform(0, std::size(kTags) - 1)]);
  if (rng.uniform(0, 4) == 0) {
    node->setAttribute(
        rng.uniform(0, 1) == 0 ? "class" : "id",
        kClassValues[rng.uniform(0, std::size(kClassValues) - 1)]);
  }
  if (maxDepth > 0) {
    const int children = static_cast<int>(
        rng.uniform(0, static_cast<std::uint32_t>(maxChildren)));
    for (int i = 0; i < children; ++i) {
      switch (rng.uniform(0, 5)) {
        case 0:
          node->appendChild(Node::makeText(
              kTexts[rng.uniform(0, std::size(kTexts) - 1)]));
          break;
        case 1:
          node->appendChild(Node::makeComment("c"));
          break;
        default:
          node->appendChild(richRandomTree(rng, maxDepth - 1, maxChildren));
          break;
      }
    }
  }
  return node;
}

void collectMutable(Node& node, std::vector<Node*>& out) {
  out.push_back(&node);
  for (std::size_t i = 0; i < node.childCount(); ++i) {
    collectMutable(node.child(i), out);
  }
}

// A handful of random structural/textual edits — the kind of difference a
// stripped cookie (or page dynamics) produces between two copies.
void mutate(Node& root, util::Pcg32& rng) {
  const int edits = 1 + static_cast<int>(rng.uniform(0, 3));
  for (int e = 0; e < edits; ++e) {
    std::vector<Node*> nodes;
    collectMutable(root, nodes);
    Node* victim = nodes[rng.uniform(
        0, static_cast<std::uint32_t>(nodes.size() - 1))];
    switch (rng.uniform(0, 3)) {
      case 0:  // drop a child subtree
        if (victim->childCount() > 0) {
          victim->removeChild(rng.uniform(
              0, static_cast<std::uint32_t>(victim->childCount() - 1)));
        }
        break;
      case 1:  // graft a fresh subtree
        victim->appendChild(richRandomTree(rng, 2, 3));
        break;
      case 2:  // rewrite a text node (same context, new content)
        if (victim->isText()) {
          victim->setValue(kTexts[rng.uniform(0, std::size(kTexts) - 1)]);
        } else {
          victim->appendChild(
              Node::makeText(kTexts[rng.uniform(0, std::size(kTexts) - 1)]));
        }
        break;
      default:  // swap two children
        if (victim->childCount() >= 2) {
          auto first = victim->removeChild(0);
          victim->appendChild(std::move(first));
        }
        break;
    }
  }
}

// HTML-ish soup for the end-to-end parser + decision differential.
std::string randomHtml(util::Pcg32& rng, int tokens) {
  static const char* kPieces[] = {
      "<div>",          "</div>",     "<p>",        "</p>",
      "<span class=ad>", "</span>",   "headline ",  "2007-01-17 ",
      "<br>",           "<option>us</option>", "<ul><li>", "</ul>",
      "<!-- c -->",     "<b>",        "</i>",       "<a href='u'>",
      "</a>",           "12:30:05 ",  "<script>s</script>", "*** ",
      "<table><tr><td>", "</table>",  "more words ", "\n  ",
  };
  std::string html = "<html><body>";
  for (int i = 0; i < tokens; ++i) {
    html += kPieces[rng.uniform(0, std::size(kPieces) - 1)];
  }
  return html;
}

// --- the differential ---------------------------------------------------------

// Every tree-metric comparison the fast path can be asked for, checked for
// exact equality against the reference.
void expectTreeMetricsIdentical(const Node& a, const Node& b,
                                const dom::TreeSnapshot& sa,
                                const dom::TreeSnapshot& sb,
                                core::RstmArena& arena) {
  for (const int level : {1, 3, 5, 8}) {
    EXPECT_EQ(core::restrictedSimpleTreeMatching(a, b, level),
              core::restrictedSimpleTreeMatching(sa, 0, sb, 0, arena, level))
        << "RSTM diverged at level " << level;
    EXPECT_EQ(core::countRestrictedNodes(a, level),
              core::countRestrictedNodes(sa, 0, level))
        << "N(A) diverged at level " << level;
    EXPECT_EQ(core::countRestrictedNodes(b, level),
              core::countRestrictedNodes(sb, 0, level))
        << "N(B) diverged at level " << level;
    // Same integer counts => the double division is bit-identical too.
    EXPECT_EQ(core::nTreeSim(a, b, level),
              core::nTreeSim(sa, 0, sb, 0, arena, level))
        << "NTreeSim diverged at level " << level;
  }
}

void expectTextMetricsIdentical(const Node& a, const Node& b,
                                const dom::TreeSnapshot& sa,
                                const dom::TreeSnapshot& sb,
                                core::CvceScratch& scratch) {
  core::CvceOptions allOff;
  allOff.filterScriptsAndStyles = false;
  allOff.filterAdvertisement = false;
  allOff.filterDateTime = false;
  allOff.filterOptionText = false;
  allOff.filterNonAlphanumeric = false;
  core::CvceOptions noAdNoOption;
  noAdNoOption.filterAdvertisement = false;
  noAdNoOption.filterOptionText = false;
  for (const core::CvceOptions& options :
       {core::CvceOptions{}, allOff, noAdNoOption}) {
    const std::set<std::string> refA = core::extractContextContent(a, options);
    const std::set<std::string> refB = core::extractContextContent(b, options);
    core::CvceFeatureSet fastA;
    core::CvceFeatureSet fastB;
    core::extractContextContentFeatures(sa, 0, options, scratch, fastA);
    core::extractContextContentFeatures(sb, 0, options, scratch, fastB);
    // Interned dedup must agree with string-set dedup exactly: same
    // cardinality means no hash collision merged two distinct strings and
    // no context aliasing split one.
    EXPECT_EQ(refA.size(), fastA.size());
    EXPECT_EQ(refB.size(), fastB.size());
    if (refB.size() != fastB.size()) {
      std::string dump = dom::toDebugString(b) + "\nref strings:\n";
      for (const auto& s : refB) dump += "  [" + s + "]\n";
      dump += "fast features:\n";
      for (const auto& f : fastB) {
        dump += "  ctx=" + std::to_string(f.contextId) +
                " hash=" + std::to_string(f.textHash) + "\n";
      }
      ADD_FAILURE() << dump;
      return;
    }
    for (const bool credit : {true, false}) {
      EXPECT_EQ(core::nTextSim(refA, refB, credit),
                core::nTextSim(fastA, fastB, scratch, credit))
          << "NTextSim diverged (credit=" << credit << ")";
    }
  }
}

class FastPathDifferential : public ::testing::TestWithParam<std::uint64_t> {};

// 100 pairs per seed x 10 seeds = 1000 random tree pairs: half independent
// draws (wildly different trees), half original-vs-mutated (the realistic
// regular-vs-hidden shape, mostly-equal with localized edits).
TEST_P(FastPathDifferential, RandomTreePairsBitIdentical) {
  util::Pcg32 rng(GetParam(), 21);
  core::RstmArena arena;
  core::CvceScratch scratch;
  for (int trial = 0; trial < 50; ++trial) {
    const auto treeA = richRandomTree(rng, 5, 3);
    const auto independent = richRandomTree(rng, 5, 3);
    auto mutated = treeA->clone();
    mutate(*mutated, rng);
    for (const Node* treeB : {independent.get(), mutated.get()}) {
      const dom::TreeSnapshot sa(*treeA);
      const dom::TreeSnapshot sb(*treeB);
      expectTreeMetricsIdentical(*treeA, *treeB, sa, sb, arena);
      expectTextMetricsIdentical(*treeA, *treeB, sa, sb, scratch);
    }
  }
}

// End to end through the real parser and Figure 5, the way FORCUM calls it:
// identical similarities and identical verdicts, across decision modes.
TEST_P(FastPathDifferential, ParsedHtmlDecisionsMatch) {
  util::Pcg32 rng(GetParam(), 22);
  core::DetectionScratch scratch;
  for (int trial = 0; trial < 10; ++trial) {
    const std::string htmlA = randomHtml(rng, 40);
    std::string htmlB = htmlA;
    if (rng.uniform(0, 1) == 0) {
      htmlB += "<div><p>injected difference</p></div>";
    }
    const auto docA = html::parseHtml(htmlA);
    const auto docB = html::parseHtml(htmlB);
    const dom::TreeSnapshot sa(*docA);
    const dom::TreeSnapshot sb(*docB);
    for (const core::DecisionMode mode :
         {core::DecisionMode::Both, core::DecisionMode::TreeOnly,
          core::DecisionMode::TextOnly, core::DecisionMode::Either}) {
      core::DecisionConfig config;
      config.mode = mode;
      const core::DecisionResult reference =
          core::decideCookieUsefulness(*docA, *docB, config);
      const core::DecisionResult fast =
          core::decideCookieUsefulness(sa, sb, scratch, config);
      EXPECT_EQ(reference.treeSim, fast.treeSim);
      EXPECT_EQ(reference.textSim, fast.textSim);
      EXPECT_EQ(reference.causedByCookies, fast.causedByCookies);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// --- interner ----------------------------------------------------------------

TEST(Interner, SameNameSameIdAcrossThreads) {
  // Hammer the global interners from many threads over an overlapping name
  // set; every thread must observe the same name -> id mapping (and under
  // COOKIEPICKER_SANITIZE=thread this doubles as the data-race check).
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::vector<dom::SymbolId>> perThread(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &perThread]() {
      auto& mine = perThread[static_cast<std::size_t>(t)];
      for (int round = 0; round < kRounds; ++round) {
        const std::string name =
            "tag" + std::to_string((round + t) % 37);
        const dom::SymbolId id = dom::globalSymbolInterner().intern(name);
        mine.push_back(id);
        // Contexts too: seed and extend race through the same locks.
        const dom::ContextId seeded = dom::globalContextInterner().seed(id);
        const dom::ContextId extended =
            dom::globalContextInterner().extend(seeded, id);
        EXPECT_NE(seeded, extended);
      }
    });
  }
  for (std::thread& thread : pool) thread.join();

  // Re-intern single-threaded and check every thread saw the same ids.
  for (int t = 0; t < kThreads; ++t) {
    for (int round = 0; round < kRounds; ++round) {
      const std::string name = "tag" + std::to_string((round + t) % 37);
      EXPECT_EQ(perThread[static_cast<std::size_t>(t)]
                         [static_cast<std::size_t>(round)],
                dom::globalSymbolInterner().intern(name));
    }
  }
}

TEST(Interner, SeededAndExtendedPathsDistinct) {
  // "body" (seeded root path) and ":body" (extension of the empty context)
  // are different reference strings; the interner must keep them apart.
  const dom::SymbolId body = dom::globalSymbolInterner().intern("body");
  const dom::ContextId seeded = dom::globalContextInterner().seed(body);
  const dom::ContextId extended = dom::globalContextInterner().extend(
      dom::ContextInterner::kEmpty, body);
  EXPECT_NE(seeded, extended);
  // Determinism: asking again returns the same ids.
  EXPECT_EQ(seeded, dom::globalContextInterner().seed(body));
  EXPECT_EQ(extended, dom::globalContextInterner().extend(
                          dom::ContextInterner::kEmpty, body));
}

}  // namespace
}  // namespace cookiepicker
