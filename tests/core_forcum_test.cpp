#include <gtest/gtest.h>

#include "core/cookie_picker.h"
#include "core/forcum.h"
#include "server/generator.h"
#include "test_support.h"

namespace cookiepicker::core {
namespace {

using testsupport::SimWorld;

// Crawl helper: browse `views` pages of a site through the picker.
void crawl(CookiePicker& picker, const server::SiteSpec& spec, int views) {
  const auto paths = server::buildSite(spec, picker.browser().clock())
                         ->pagePaths();  // same path scheme
  for (int i = 0; i < views; ++i) {
    picker.browse("http://" + spec.domain +
                  paths[static_cast<std::size_t>(i) % paths.size()]);
  }
}

server::SiteSpec trackerOnlySpec(const std::string& domain, int trackers) {
  server::SiteSpec spec;
  spec.label = "T";
  spec.domain = domain;
  spec.category = "news";
  spec.seed = 31;
  spec.containerTrackers = trackers;
  return spec;
}

server::SiteSpec prefSpec(const std::string& domain, int intensity = 2) {
  server::SiteSpec spec;
  spec.label = "P";
  spec.domain = domain;
  spec.category = "arts";
  spec.seed = 32;
  spec.preferenceCookies = 1;
  spec.preferenceIntensity = intensity;
  return spec;
}

// --- state (de)serialization ---------------------------------------------------

TEST(ForcumState, HostileCookieNamesRoundTrip) {
  // Cookie names/domains/paths are server-chosen; ones containing the state
  // format's own separators ('|', ';', '\t', newlines, '%') must survive a
  // save/load cycle intact instead of corrupting neighbouring fields.
  SimWorld world;
  ForcumEngine engine(world.browser);
  const std::string serialized =
      "evil.example\t1\t7\t3\t2\t"
      "a%7Cb%3Bc|evil.example|/%09d;"
      "plain|evil.example|/;"
      "pct%2525|evil.example|/%0A\n";
  engine.restoreState(serialized);

  const ForcumEngine::SiteState* state = engine.siteState("evil.example");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->totalViews, 7);
  EXPECT_EQ(state->hiddenRequests, 3);
  EXPECT_EQ(state->consecutiveQuietViews, 2);
  ASSERT_EQ(state->knownPersistent.size(), 3u);
  EXPECT_TRUE(state->knownPersistent.contains(
      {"a|b;c", "evil.example", "/\td"}));
  EXPECT_TRUE(state->knownPersistent.contains(
      {"plain", "evil.example", "/"}));
  EXPECT_TRUE(state->knownPersistent.contains(
      {"pct%25", "evil.example", "/\n"}));

  // Serialize -> restore is a fixpoint: a second engine restored from the
  // first's output holds byte-identical state.
  const std::string reserialized = engine.serializeState();
  ForcumEngine second(world.browser);
  second.restoreState(reserialized);
  EXPECT_EQ(second.serializeState(), reserialized);
  const ForcumEngine::SiteState* restored = second.siteState("evil.example");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->knownPersistent, state->knownPersistent);
}

TEST(ForcumState, MalformedCountersSkipLineWithoutThrowing) {
  // std::from_chars-based parsing: trailing junk, negatives, overflow, and
  // plain garbage all skip the line (old std::stoi accepted "12abc").
  SimWorld world;
  ForcumEngine engine(world.browser);
  engine.restoreState(
      "junk.example\t1\t12abc\t3\t2\tn|d|/\n"
      "neg.example\t1\t-4\t3\t2\tn|d|/\n"
      "huge.example\t1\t99999999999999999999\t3\t2\tn|d|/\n"
      "empty.example\t1\t\t3\t2\tn|d|/\n"
      "good.example\t0\t5\t1\t0\tn|d|/\n");
  EXPECT_EQ(engine.siteState("junk.example"), nullptr);
  EXPECT_EQ(engine.siteState("neg.example"), nullptr);
  EXPECT_EQ(engine.siteState("huge.example"), nullptr);
  EXPECT_EQ(engine.siteState("empty.example"), nullptr);
  const ForcumEngine::SiteState* good = engine.siteState("good.example");
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->totalViews, 5);
  EXPECT_FALSE(good->trainingActive);
}

// --- FORCUM engine -------------------------------------------------------------

TEST(Forcum, TrackerCookiesNeverMarked) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 3));
  CookiePicker picker(world.browser);
  crawl(picker, spec, 12);
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    EXPECT_FALSE(record->useful) << record->key.name;
  }
}

TEST(Forcum, PreferenceCookieMarkedUseful) {
  SimWorld world;
  const auto spec = world.addSite(prefSpec("pref.example"));
  CookiePicker picker(world.browser);
  crawl(picker, spec, 6);
  const auto records =
      world.browser.jar().persistentCookiesForHost(spec.domain);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0]->useful);
}

TEST(Forcum, FirstViewCannotDetectYet) {
  // On the very first view the regular page was fetched without cookies,
  // so regular and hidden copies agree; marking happens from view two on.
  SimWorld world;
  const auto spec = world.addSite(prefSpec("pref.example"));
  CookiePicker picker(world.browser);
  const ForcumStepReport first = picker.browse(world.urlFor(spec));
  EXPECT_TRUE(first.newlyMarked.empty());
  const ForcumStepReport second = picker.browse(world.urlFor(spec));
  EXPECT_FALSE(second.newlyMarked.empty());
}

TEST(Forcum, CoSentTrackersGetCoMarked) {
  // The P5/P6 effect: trackers riding the same request as a useful cookie
  // are marked together with it under AllPersistent group testing.
  SimWorld world;
  auto spec = prefSpec("mix.example");
  spec.containerTrackers = 3;
  world.addSite(spec);
  CookiePicker picker(world.browser);
  crawl(picker, spec, 6);
  int marked = 0;
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    if (record->useful) ++marked;
  }
  EXPECT_EQ(marked, 4);  // 1 real + 3 co-sent
}

TEST(Forcum, PerCookieModeAvoidsCoMarking) {
  SimWorld world;
  auto spec = prefSpec("mix.example");
  spec.containerTrackers = 3;
  world.addSite(spec);
  CookiePickerConfig config;
  config.forcum.groupMode = CookieGroupMode::PerCookie;
  CookiePicker picker(world.browser, config);
  crawl(picker, spec, 20);  // per-cookie testing needs more views
  int marked = 0;
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    if (record->useful) {
      ++marked;
      EXPECT_EQ(record->key.name, "prefstyle");
    }
  }
  EXPECT_EQ(marked, 1);
}

TEST(Forcum, NoHiddenRequestWithoutPersistentCookies) {
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "N";
  spec.domain = "plain.example";
  spec.category = "science";
  spec.seed = 3;
  spec.sessionCart = true;  // session cookie only
  world.addSite(spec);
  CookiePicker picker(world.browser);
  const ForcumStepReport report = picker.browse("http://plain.example/");
  EXPECT_FALSE(report.hiddenRequestSent);
}

TEST(Forcum, TrainingTurnsOffAfterStableViews) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 2));
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 5;
  CookiePicker picker(world.browser, config);
  crawl(picker, spec, 12);
  EXPECT_FALSE(picker.forcum().isTrainingActive(spec.domain));
  const ForcumEngine::SiteState* state =
      picker.forcum().siteState(spec.domain);
  ASSERT_NE(state, nullptr);
  // Once off, later views send no hidden requests.
  const int hiddenBefore = state->hiddenRequests;
  picker.browse(world.urlFor(spec));
  EXPECT_EQ(state->hiddenRequests, hiddenBefore);
}

TEST(Forcum, NewCookieReactivatesTraining) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 2));
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 4;
  CookiePicker picker(world.browser, config);
  crawl(picker, spec, 10);
  ASSERT_FALSE(picker.forcum().isTrainingActive(spec.domain));
  // A new cookie appears (e.g. the site deployed a new tracker).
  net::SetCookie fresh;
  fresh.name = "brandnew";
  fresh.value = "1";
  fresh.maxAgeSeconds = 86400;
  world.browser.jar().store(fresh, *net::Url::parse(world.urlFor(spec)),
                            true, world.clock.nowMs());
  picker.browse(world.urlFor(spec));
  EXPECT_TRUE(picker.forcum().isTrainingActive(spec.domain));
}

TEST(Forcum, ManualResumeWorks) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 1));
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 3;
  CookiePicker picker(world.browser, config);
  crawl(picker, spec, 8);
  ASSERT_FALSE(picker.forcum().isTrainingActive(spec.domain));
  picker.forcum().resumeTraining(spec.domain);
  EXPECT_TRUE(picker.forcum().isTrainingActive(spec.domain));
}

TEST(Forcum, ReportsDurationAndDetectionStats) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 2));
  CookiePicker picker(world.browser);
  crawl(picker, spec, 5);
  const HostReport report = picker.report(spec.domain);
  EXPECT_EQ(report.persistentCookies, 2);
  EXPECT_EQ(report.markedUseful, 0);
  EXPECT_GT(report.hiddenRequests, 0);
  EXPECT_GT(report.averageDurationMs, 0.0);
  EXPECT_GE(report.averageDetectionMs, 0.0);
  // Duration is dominated by the hidden round trip: comfortably below the
  // >10 s mean think time.
  EXPECT_LT(report.averageDurationMs, 10'000.0);
}

// --- enforcement -----------------------------------------------------------------

TEST(CookiePickerFacade, EnforcementBlocksAndDeletesUseless) {
  SimWorld world;
  auto spec = prefSpec("mix.example");
  spec.pixelTrackers = 2;  // path-scoped: never co-marked
  world.addSite(spec);
  CookiePicker picker(world.browser);
  // Crawl page views plus the pixel paths get fetched as subresources.
  crawl(picker, spec, 8);
  // pref + 2 pixel trackers (path-scoped, never co-marked).
  ASSERT_EQ(world.browser.jar().persistentCookiesForHost(spec.domain).size(),
            3u);
  picker.enforceForHost(spec.domain);
  EXPECT_TRUE(picker.isEnforced(spec.domain));
  // The pref cookie (useful) survives; pixels were host cookies on the same
  // host with /metrics paths — removed as useless.
  bool prefSurvives = false;
  for (const cookies::CookieRecord* record : world.browser.jar().all()) {
    if (record->key.name == "prefstyle") prefSurvives = true;
    EXPECT_FALSE(record->key.name.starts_with("px"));
  }
  EXPECT_TRUE(prefSurvives);
}

TEST(CookiePickerFacade, AutoEnforceAfterStability) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 2));
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 4;
  config.autoEnforce = true;
  CookiePicker picker(world.browser, config);
  crawl(picker, spec, 10);
  EXPECT_TRUE(picker.isEnforced(spec.domain));
  // Jar no longer holds the trackers.
  EXPECT_TRUE(
      world.browser.jar().persistentCookiesForHost(spec.domain).empty());
}

// --- backward error recovery -------------------------------------------------------

TEST(Recovery, ButtonRemarksPageCookiesUseful) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 2));
  CookiePicker picker(world.browser);
  crawl(picker, spec, 4);
  // User notices a problem and presses the button.
  const auto changed =
      picker.pressRecoveryButton(*net::Url::parse(world.urlFor(spec)));
  EXPECT_EQ(changed.size(), 2u);
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    EXPECT_TRUE(record->useful);
  }
  EXPECT_EQ(picker.recovery().recoveryCount(), 1);
  EXPECT_TRUE(picker.forcum().isTrainingActive(spec.domain));
}

TEST(Recovery, RecoveredCookiesSurviveEnforcement) {
  SimWorld world;
  const auto spec = world.addSite(trackerOnlySpec("trk.example", 1));
  CookiePicker picker(world.browser);
  crawl(picker, spec, 3);
  picker.pressRecoveryButton(*net::Url::parse(world.urlFor(spec)));
  picker.enforceForHost(spec.domain);
  EXPECT_EQ(world.browser.jar().persistentCookiesForHost(spec.domain).size(),
            1u);
}

TEST(Recovery, MarksMonotone) {
  // markUseful is one-directional: pressing recovery twice or re-running
  // training never un-marks.
  SimWorld world;
  const auto spec = world.addSite(prefSpec("pref.example"));
  CookiePicker picker(world.browser);
  crawl(picker, spec, 6);
  const auto before =
      world.browser.jar().persistentCookiesForHost(spec.domain);
  ASSERT_FALSE(before.empty());
  ASSERT_TRUE(before[0]->useful);
  crawl(picker, spec, 6);
  EXPECT_TRUE(world.browser.jar()
                  .persistentCookiesForHost(spec.domain)[0]
                  ->useful);
}

}  // namespace
}  // namespace cookiepicker::core
