# Empty compiler generated dependencies file for bench_threshold_ablation.
# This may be replaced when dependencies are built.
