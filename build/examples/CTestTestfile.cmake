# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shopping_site "/root/repo/build/examples/shopping_site")
set_tests_properties(example_shopping_site PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_privacy_audit "/root/repo/build/examples/privacy_audit")
set_tests_properties(example_privacy_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_recovery_walkthrough "/root/repo/build/examples/recovery_walkthrough")
set_tests_properties(example_recovery_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_measurement_study "/root/repo/build/examples/measurement_study")
set_tests_properties(example_measurement_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_evasion_arms_race "/root/repo/build/examples/evasion_arms_race")
set_tests_properties(example_evasion_arms_race PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
