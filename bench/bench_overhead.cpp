// Overhead comparison (Sections 3.1, 5.2.1, 6): CookiePicker's extra cost
// per page view is a single hidden container request, versus Doppelganger's
// fully mirrored fork window (container + all embedded objects) and its
// user prompts. Also checks the think-time argument: identification
// duration fits comfortably inside Mah-model think time.
#include <cstdio>

#include "baseline/doppelganger.h"
#include "browser/browser.h"
#include "core/cookie_picker.h"
#include "net/network.h"
#include "server/generator.h"
#include "util/stats.h"

int main() {
  using namespace cookiepicker;

  std::printf("=== Overhead: CookiePicker vs Doppelganger-style mirroring ===\n\n");

  constexpr int kViewsPerSite = 12;
  const auto roster = server::table1Roster();

  // --- CookiePicker run -------------------------------------------------
  double pickerExtraRequests = 0;
  double pickerExtraBytes = 0;
  double pickerUserPrompts = 0;
  util::SampleSet pickerDurations;
  {
    util::SimClock clock;
    net::Network network(404);
    browser::Browser browser(network, clock);
    core::CookiePicker picker(browser);
    server::registerRoster(network, clock, roster);
    for (const server::SiteSpec& spec : roster) {
      for (int view = 0; view < kViewsPerSite; ++view) {
        const std::string path =
            view == 0 ? "/" : "/page" + std::to_string(view);
        const auto pageView =
            browser.visit("http://" + spec.domain + path);
        const std::uint64_t requestsBefore = network.totalRequests();
        const std::uint64_t bytesBefore = network.totalBytesTransferred();
        const auto report = picker.onPageLoaded(pageView);
        pickerExtraRequests +=
            static_cast<double>(network.totalRequests() - requestsBefore);
        pickerExtraBytes += static_cast<double>(
            network.totalBytesTransferred() - bytesBefore);
        if (report.hiddenRequestSent) {
          pickerDurations.add(report.durationMs);
        }
        browser.think();
      }
    }
  }

  // --- Doppelganger run --------------------------------------------------
  baseline::DoppelgangerStats doppelStats;
  {
    util::SimClock clock;
    net::Network network(404);
    browser::Browser browser(network, clock);
    server::registerRoster(network, clock, roster);
    baseline::Doppelganger doppelganger(
        browser, network,
        // Oracle: the simulated user inspects both windows; they answer
        // "useful" when page texts differ meaningfully. Each call is an
        // interruption regardless of the answer.
        [](const std::string& mainHtml, const std::string& forkHtml) {
          return mainHtml.size() != forkHtml.size();
        });
    for (const server::SiteSpec& spec : roster) {
      for (int view = 0; view < kViewsPerSite; ++view) {
        const std::string path =
            view == 0 ? "/" : "/page" + std::to_string(view);
        const auto pageView =
            browser.visit("http://" + spec.domain + path);
        doppelganger.onPageView(pageView);
        browser.think();
      }
    }
    doppelStats = doppelganger.stats();
  }

  const double totalViews = 30.0 * kViewsPerSite;
  util::TextTable table({"metric (per page view)", "CookiePicker",
                         "Doppelganger", "ratio"});
  const double doppelRequests =
      static_cast<double>(doppelStats.mirroredRequests) / totalViews;
  const double pickerRequests = pickerExtraRequests / totalViews;
  table.addRow({"extra HTTP requests",
                util::TextTable::formatDouble(pickerRequests, 2),
                util::TextTable::formatDouble(doppelRequests, 2),
                util::TextTable::formatDouble(
                    doppelRequests / pickerRequests, 1) + "x"});
  const double doppelKb = static_cast<double>(doppelStats.mirroredBytes) /
                          totalViews / 1024.0;
  const double pickerKb = pickerExtraBytes / totalViews / 1024.0;
  table.addRow({"extra transfer (KB)",
                util::TextTable::formatDouble(pickerKb, 1),
                util::TextTable::formatDouble(doppelKb, 1),
                util::TextTable::formatDouble(doppelKb / pickerKb, 1) +
                    "x"});
  table.addRow({"user prompts",
                util::TextTable::formatDouble(pickerUserPrompts, 2),
                util::TextTable::formatDouble(
                    static_cast<double>(doppelStats.userPrompts) /
                        totalViews,
                    2),
                "inf"});
  std::printf("%s\n", table.render().c_str());

  std::printf("CookiePicker identification duration: mean %.0f ms, p95 %.0f "
              "ms, max %.0f ms\n",
              pickerDurations.mean(), pickerDurations.percentile(95),
              pickerDurations.max());
  std::printf("  [paper: 2683.3 ms average; must fit inside >10 s think "
              "time]\n");
  std::printf("Doppelganger user interruptions total: %llu over %.0f views "
              "[CookiePicker: 0 — fully automatic]\n",
              static_cast<unsigned long long>(doppelStats.userPrompts),
              totalViews);
  return 0;
}
