file(REMOVE_RECURSE
  "libcp_html.a"
)
