// Deterministic fuzz sweeps over the wire-facing parsers: URLs, Set-Cookie
// headers, HTTP dates. The properties are totality (no crash, no hang on
// any byte soup), determinism, and idempotent reformatting where a
// formatter exists.
#include <gtest/gtest.h>

#include <string>

#include "net/cookie_parse.h"
#include "net/url.h"
#include "util/rng.h"

namespace cookiepicker::net {
namespace {

std::string randomBytes(util::Pcg32& rng, int maxLength) {
  const int length = static_cast<int>(
      rng.uniform(0, static_cast<std::uint32_t>(maxLength)));
  std::string text;
  text.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    // Mostly printable ASCII with occasional control/high bytes.
    if (rng.chance(0.9)) {
      text.push_back(static_cast<char>(rng.uniform(0x20, 0x7E)));
    } else {
      text.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
  }
  return text;
}

std::string randomUrlish(util::Pcg32& rng) {
  static const char* kPieces[] = {
      "http://", "https://", "ftp://", "", "example.com", "a.b.c",
      ":8080",   ":-1",      ":99999", "/", "/path",      "?q=1",
      "#frag",   "//",       "..",     "%41", "@user",    "[::1]",
  };
  std::string url;
  const int pieces = static_cast<int>(rng.uniform(1, 6));
  for (int i = 0; i < pieces; ++i) {
    url += kPieces[rng.uniform(0, std::size(kPieces) - 1)];
  }
  return url;
}

class NetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetFuzz, UrlParseIsTotalAndDeterministic) {
  util::Pcg32 rng(GetParam(), 1);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string text =
        rng.chance(0.5) ? randomUrlish(rng) : randomBytes(rng, 80);
    const auto first = Url::parse(text);
    const auto second = Url::parse(text);
    EXPECT_EQ(first.has_value(), second.has_value()) << text;
    if (first.has_value()) {
      EXPECT_EQ(first->toString(), second->toString());
      // Reparsing the canonical form is a fixpoint.
      const auto reparsed = Url::parse(first->toString());
      ASSERT_TRUE(reparsed.has_value()) << first->toString();
      EXPECT_EQ(reparsed->toString(), first->toString());
      // Invariants.
      EXPECT_FALSE(first->host().empty());
      EXPECT_EQ(first->path()[0], '/');
    }
  }
}

TEST_P(NetFuzz, ResolveIsTotal) {
  util::Pcg32 rng(GetParam(), 2);
  const Url base = *Url::parse("http://base.example/dir/page?q=1");
  for (int trial = 0; trial < 300; ++trial) {
    const std::string reference = randomBytes(rng, 60);
    const Url resolved = base.resolve(reference);
    EXPECT_FALSE(resolved.host().empty());
    EXPECT_EQ(resolved.path()[0], '/');
  }
}

TEST_P(NetFuzz, SetCookieParseIsTotalAndDeterministic) {
  util::Pcg32 rng(GetParam(), 3);
  static const char* kFragments[] = {
      "a=b",        ";",          "Domain=",   "Domain=.x.com",
      "Path=/",     "Path=zzz",   "Max-Age=",  "Max-Age=12",
      "Max-Age=-5", "Expires=",   "Secure",    "HttpOnly",
      "=",          "==",         " ",         "name",
      "Expires=Sun, 06 Nov 1994 08:49:37 GMT", "\x01\x02",
  };
  for (int trial = 0; trial < 400; ++trial) {
    std::string header;
    const int count = static_cast<int>(rng.uniform(0, 6));
    for (int i = 0; i < count; ++i) {
      header += kFragments[rng.uniform(0, std::size(kFragments) - 1)];
      if (rng.chance(0.7)) header += "; ";
    }
    const auto first = parseSetCookie(header);
    const auto second = parseSetCookie(header);
    EXPECT_EQ(first.has_value(), second.has_value()) << header;
    if (first.has_value()) {
      EXPECT_FALSE(first->name.empty());
      EXPECT_EQ(first->name, second->name);
      EXPECT_EQ(first->value, second->value);
    }
  }
}

TEST_P(NetFuzz, CookieHeaderParseFormatStable) {
  util::Pcg32 rng(GetParam(), 4);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string header = randomBytes(rng, 100);
    const auto pairs = parseCookieHeader(header);
    // Formatting what was parsed and reparsing it is lossless.
    const auto reparsed = parseCookieHeader(formatCookieHeader(pairs));
    EXPECT_EQ(pairs.size(), reparsed.size()) << header;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(pairs[i].first, reparsed[i].first);
    }
  }
}

TEST_P(NetFuzz, HttpDateParseIsTotal) {
  util::Pcg32 rng(GetParam(), 5);
  static const char* kDateFragments[] = {
      "Sun,", "06",  "Nov",  "1994", "08:49:37", "GMT", "99:99:99",
      "32",   "Feb", "0",    "-1",   "24:00:00", "xx",  "2007",
      "70",   "69",  "12:0", "",     "Janbruary",
  };
  for (int trial = 0; trial < 400; ++trial) {
    std::string text;
    const int count = static_cast<int>(rng.uniform(0, 7));
    for (int i = 0; i < count; ++i) {
      text += kDateFragments[rng.uniform(0, std::size(kDateFragments) - 1)];
      text += " ";
    }
    const auto first = parseHttpDate(text);
    const auto second = parseHttpDate(text);
    EXPECT_EQ(first.has_value(), second.has_value()) << text;
    if (first.has_value()) {
      // Any parsed date must survive a format/parse round trip.
      EXPECT_EQ(parseHttpDate(formatHttpDate(*first)).value_or(-1), *first)
          << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzz,
                         ::testing::Values(3, 7, 31, 127, 8191));

}  // namespace
}  // namespace cookiepicker::net
