// Extension-state persistence: FORCUM training state and full CookiePicker
// state (jar + training + enforcement) survive serialization round trips
// and browser restarts.
#include <gtest/gtest.h>

#include "core/cookie_picker.h"
#include "server/generator.h"
#include "test_support.h"

namespace cookiepicker::core {
namespace {

using testsupport::SimWorld;

server::SiteSpec trackerSpec(const std::string& domain) {
  server::SiteSpec spec;
  spec.label = "T";
  spec.domain = domain;
  spec.category = "news";
  spec.seed = 77;
  spec.containerTrackers = 2;
  return spec;
}

TEST(ForcumPersistence, RoundTripPreservesSiteState) {
  SimWorld world;
  const auto spec = world.addSite(trackerSpec("t.example"));
  CookiePickerConfig config;
  config.forcum.stableViewThreshold = 4;
  CookiePicker picker(world.browser, config);
  for (int i = 0; i < 8; ++i) {
    picker.browse("http://t.example/page" + std::to_string(i % 5 + 1));
  }
  const ForcumEngine::SiteState* before =
      picker.forcum().siteState(spec.domain);
  ASSERT_NE(before, nullptr);
  const bool wasActive = before->trainingActive;
  const int views = before->totalViews;
  const std::size_t known = before->knownPersistent.size();

  const std::string serialized = picker.forcum().serializeState();
  picker.forcum().restoreState(serialized);

  const ForcumEngine::SiteState* after =
      picker.forcum().siteState(spec.domain);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->trainingActive, wasActive);
  EXPECT_EQ(after->totalViews, views);
  EXPECT_EQ(after->knownPersistent.size(), known);
}

TEST(ForcumPersistence, MalformedLinesSkipped) {
  SimWorld world;
  CookiePicker picker(world.browser);
  picker.forcum().restoreState("garbage\nmore\tfields\tbut\twrong\n");
  EXPECT_EQ(picker.forcum().siteState("garbage"), nullptr);
}

TEST(ForcumPersistence, EmptyStateRestores) {
  SimWorld world;
  CookiePicker picker(world.browser);
  picker.forcum().restoreState("");
  EXPECT_EQ(picker.forcum().siteState("any.example"), nullptr);
}

TEST(PickerPersistence, FullRestartKeepsDecisionsAndEnforcement) {
  SimWorld world;
  const auto spec = world.addSite(trackerSpec("t.example"));
  std::string saved;
  {
    CookiePickerConfig config;
    config.forcum.stableViewThreshold = 3;
    CookiePicker picker(world.browser, config);
    for (int i = 0; i < 7; ++i) {
      picker.browse("http://t.example/page" + std::to_string(i % 5 + 1));
    }
    picker.enforceForHost(spec.domain);
    ASSERT_TRUE(picker.isEnforced(spec.domain));
    saved = picker.saveState();
  }

  // Fresh browser process: new jar, new picker; restore.
  SimWorld world2;
  world2.addSite(trackerSpec("t.example"));
  CookiePicker restored(world2.browser);
  restored.loadState(saved);

  EXPECT_TRUE(restored.isEnforced(spec.domain));
  EXPECT_FALSE(restored.forcum().isTrainingActive(spec.domain));
  // The jar state (enforcement deleted the trackers) carried over.
  EXPECT_TRUE(
      world2.browser.jar().persistentCookiesForHost(spec.domain).empty());

  // New views neither retrain nor leak cookies: the site re-sets trackers,
  // the known-cookie set already contains them → training stays off.
  restored.browse("http://t.example/");
  EXPECT_FALSE(restored.forcum().isTrainingActive(spec.domain));
  const browser::PageView view = world2.browser.visit("http://t.example/");
  EXPECT_EQ(
      view.containerRequest.headers.get("Cookie").value_or("").find("trk"),
      std::string::npos);
}

TEST(PickerPersistence, UsefulMarksSurviveRestart) {
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "P";
  spec.domain = "pref.example";
  spec.category = "arts";
  spec.seed = 88;
  spec.preferenceCookies = 1;
  spec.preferenceIntensity = 2;
  world.addSite(spec);
  std::string saved;
  {
    CookiePicker picker(world.browser);
    for (int i = 0; i < 5; ++i) {
      picker.browse("http://pref.example/page" + std::to_string(i + 1));
    }
    saved = picker.saveState();
  }
  SimWorld world2;
  world2.addSite(spec);
  CookiePicker restored(world2.browser);
  restored.loadState(saved);
  const cookies::CookieRecord* record =
      world2.browser.jar().find({"prefstyle", "pref.example", "/"});
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->useful);
}

TEST(PickerPersistence, LoadStateIsIdempotent) {
  SimWorld world;
  world.addSite(trackerSpec("t.example"));
  CookiePicker picker(world.browser);
  for (int i = 0; i < 4; ++i) {
    picker.browse("http://t.example/page" + std::to_string(i + 1));
  }
  const std::string once = picker.saveState();
  picker.loadState(once);
  EXPECT_EQ(picker.saveState(), once);
}

}  // namespace
}  // namespace cookiepicker::core
