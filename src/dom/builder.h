// Compact tree-notation builder for tests and benchmarks.
//
// Grammar (whitespace ignored):
//   tree    := node
//   node    := name [ '(' node (',' node)* ')' ]
//   name    := [A-Za-z0-9_-]+ | '#' quoted-text | '!' comment-text
//
// "a(b(c,b),c(d,e(f,e,d),g(h,i,j)))" builds the 14-node tree A of the
// paper's Figure 3. Names starting with '#' create text nodes ("#'hello'"),
// '!' creates comments — these let tests build mixed trees without the HTML
// parser.
#pragma once

#include <memory>
#include <string_view>

#include "dom/node.h"

namespace cookiepicker::dom {

// Parses the compact notation into an element tree. Throws
// std::invalid_argument on malformed input (tests construct these strings,
// so malformed input is a programming error worth failing loudly on).
std::unique_ptr<Node> buildTree(std::string_view notation);

// The two trees of the paper's Figure 3, reconstructed from its preorder
// numbering (N1..N14 / N15..N22) and its list of seven matching pairs:
//   A = a(b(c,b), c(d, e(f,e,d), g(h,i,j)))   [14 nodes]
//   B = a(b, c(d, e, g(f,h)))                 [8 nodes]
// STM(A, B) = 7, matching {N1,N15} {N2,N16} {N5,N17} {N6,N18} {N7,N19}
// {N11,N20} {N12,N22}.
std::unique_ptr<Node> figure3TreeA();
std::unique_ptr<Node> figure3TreeB();

}  // namespace cookiepicker::dom
