file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_scaling.dir/bench_detection_scaling.cpp.o"
  "CMakeFiles/bench_detection_scaling.dir/bench_detection_scaling.cpp.o.d"
  "bench_detection_scaling"
  "bench_detection_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
