// Per-verdict audit trail — the flight recorder's narrative half.
//
// Every Figure-5 decision FORCUM takes appends one structured JSONL record:
// which cookies were tested, both similarities, the thresholds and level in
// force, the branch the decision took, the re-probe outcome, and the FORCUM
// counter transitions. Everything recorded is a deterministic function of
// (seed, roster, views): simulated latencies are included, host-clock
// timings are not — so the trail is byte-identical for any fleet worker
// count and any mark can be replayed and explained offline.
//
// Records parse back (`parseAuditRecordLine`) and the branch can be
// re-derived from the recorded similarities (`figure5Branch` /
// `figure5Verdict`), which is exactly what the round-trip test does.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cookiepicker::obs {

struct AuditRecord {
  std::uint64_t seq = 0;  // assigned by AuditTrail::append (1-based)
  std::string host;
  std::string url;
  // FORCUM view counter for this host at decision time.
  std::int64_t view = 0;
  // Tested cookie group, "name|domain|path" per entry, sorted (CookieKey
  // order), so the record bytes never depend on iteration incidentals.
  std::vector<std::string> testedGroup;

  double treeSim = 1.0;
  double textSim = 1.0;
  double treeThreshold = 0.0;
  double textThreshold = 0.0;
  std::int64_t level = 0;            // the RSTM restriction level l
  std::string mode;                  // "both" | "tree-only" | ...
  std::string branch;                // figure5Branch(...) label
  // Why this step was degraded to a skip ("hidden-degraded:<reason>",
  // "container-error", "reprobe-degraded:<reason>"), or empty for a normal
  // decision. Skipped steps never mark cookies.
  std::string skippedReason;
  bool causedByCookies = false;

  bool reprobeRan = false;
  bool reprobeVetoed = false;
  double reprobeTreeSim = 1.0;
  double reprobeTextSim = 1.0;

  // Simulated (deterministic) latency of the hidden round trip(s).
  double hiddenLatencyMs = 0.0;
  // Network dispatches the hidden fetch(es) spent, retries included.
  std::int64_t hiddenAttempts = 0;

  // FORCUM counter transitions for the host.
  std::int64_t viewsTotal = 0;
  std::int64_t hiddenRequests = 0;
  std::int64_t quietBefore = 0;
  std::int64_t quietAfter = 0;
  bool trainingActiveAfter = true;

  // Cookies newly marked useful by this decision, same key rendering.
  std::vector<std::string> marked;

  // Provenance attribution outcome. The three fields are serialized only
  // when hasAttribution is set (the step ran AttributionMode::Provenance),
  // so records from attribution-off runs stay byte-identical to builds that
  // predate the tier; the parser accepts both shapes.
  bool hasAttribution = false;
  // Cookie name taint nominated (single-label intersection), or empty when
  // taint was ambiguous or unavailable.
  std::string attributedCookie;
  // The targeted confirm strip reproduced the difference for the nominated
  // cookie — only then does a nomination mark.
  bool attributionConfirmed = false;
  // Targeted single-cookie confirm fetches this step issued.
  std::int64_t attributionConfirmStrips = 0;

  // Supporting evidence from core::explain (collected only for marking
  // verdicts): structural regions and context-content strings present in
  // only one page version.
  std::vector<std::string> evidenceStructureRegular;
  std::vector<std::string> evidenceStructureHidden;
  std::vector<std::string> evidenceTextRegular;
  std::vector<std::string> evidenceTextHidden;

  // Canonical single-line JSON (fixed key order, shortest round-trip
  // doubles). parse(toJsonLine()) == *this, byte for byte.
  std::string toJsonLine() const;
};

// Parses one line produced by AuditRecord::toJsonLine. Returns nullopt on
// malformed input; unknown keys are an error (the format is closed).
std::optional<AuditRecord> parseAuditRecordLine(std::string_view line);

// The Figure-5 branch label from the two threshold comparisons:
// "both-differ", "tree-only-differs", "text-only-differs",
// "neither-differs".
const char* figure5Branch(bool treeDiffers, bool textDiffers);

// The verdict the given decision mode derives from those comparisons.
// `mode` is the recorded string; unknown modes return false.
bool figure5Verdict(std::string_view mode, bool treeDiffers,
                    bool textDiffers);

// Thread-safe JSONL sink. Appends serialize under a mutex; a fleet host
// session owns one trail, so the per-host byte streams concatenate in
// roster order into a scheduling-independent fleet trail.
class AuditTrail {
 public:
  // Serializes and appends, assigning the record's seq (1-based, per
  // trail). The record is taken by reference so callers can reuse storage.
  void append(AuditRecord& record);

  std::string jsonl() const;
  std::uint64_t recordCount() const;

 private:
  mutable std::mutex mutex_;
  std::string lines_;
  std::uint64_t seq_ = 0;
};

}  // namespace cookiepicker::obs
