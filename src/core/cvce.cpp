#include "core/cvce.h"

#include <map>

#include "util/strings.h"

namespace cookiepicker::core {

namespace {

using dom::Node;

bool hasAdToken(const std::string& value) {
  // Token-wise match so "download" or "shadow" do not trip the filter.
  for (const std::string& raw :
       util::split(util::toLowerAscii(value), ' ')) {
    for (const std::string& token : util::split(raw, '-')) {
      for (const std::string& piece : util::split(token, '_')) {
        if (piece == "ad" || piece == "ads" || piece == "adslot" ||
            piece == "advert" || piece == "advertisement" ||
            piece == "sponsor" || piece == "sponsored" ||
            piece == "banner" || piece == "promo" ||
            piece == "doubleclick") {
          return true;
        }
      }
    }
  }
  return false;
}

void extractRecursive(const Node& node, const std::string& context,
                      const CvceOptions& options,
                      std::set<std::string>& output) {
  if (node.isText()) {
    const std::string text = util::collapseWhitespace(node.value());
    if (text.empty()) return;
    if (options.filterNonAlphanumeric && !util::hasAlphanumeric(text)) {
      return;
    }
    if (options.filterDateTime && util::looksLikeDateOrTime(text)) return;
    output.insert(context + kContextSeparator + text);
    return;
  }
  if (node.isComment()) return;

  if (node.isElement()) {
    const std::string& tag = node.name();
    if (options.filterScriptsAndStyles &&
        (tag == "script" || tag == "style" || tag == "noscript")) {
      return;
    }
    if (options.filterOptionText && tag == "option") return;
    if (options.filterAdvertisement &&
        looksLikeAdvertisementContainer(node)) {
      return;
    }
    const std::string currentContext = context + ":" + tag;
    for (const auto& child : node.children()) {
      extractRecursive(*child, currentContext, options, output);
    }
    return;
  }
  // Document / doctype containers: descend without extending the context.
  for (const auto& child : node.children()) {
    extractRecursive(*child, context, options, output);
  }
}

}  // namespace

bool looksLikeAdvertisementContainer(const dom::Node& element) {
  if (!element.isElement()) return false;
  if (const auto classAttr = element.attribute("class");
      classAttr.has_value() && hasAdToken(*classAttr)) {
    return true;
  }
  if (const auto idAttr = element.attribute("id");
      idAttr.has_value() && hasAdToken(*idAttr)) {
    return true;
  }
  return false;
}

std::set<std::string> extractContextContent(const dom::Node& root,
                                            const CvceOptions& options) {
  std::set<std::string> output;
  // The root element's own name seeds the context, so paths are stable
  // regardless of what the root's parent looked like.
  if (root.isElement()) {
    const std::string seed = root.name();
    if (options.filterScriptsAndStyles &&
        (seed == "script" || seed == "style" || seed == "noscript")) {
      return output;
    }
    for (const auto& child : root.children()) {
      extractRecursive(*child, seed, options, output);
    }
  } else {
    for (const auto& child : root.children()) {
      extractRecursive(*child, "", options, output);
    }
  }
  return output;
}

std::string contextOf(const std::string& contextContent) {
  const std::size_t separator = contextContent.find(kContextSeparator);
  return separator == std::string::npos ? contextContent
                                        : contextContent.substr(0, separator);
}

double nTextSim(const std::set<std::string>& s1,
                const std::set<std::string>& s2, bool sameContextCredit) {
  if (s1.empty() && s2.empty()) return 1.0;

  std::size_t intersection = 0;
  // Strings unique to each side, bucketed by context.
  std::map<std::string, std::size_t> unique1Contexts;
  std::map<std::string, std::size_t> unique2Contexts;

  for (const std::string& entry : s1) {
    if (s2.contains(entry)) {
      ++intersection;
    } else {
      ++unique1Contexts[contextOf(entry)];
    }
  }
  for (const std::string& entry : s2) {
    if (!s1.contains(entry)) {
      ++unique2Contexts[contextOf(entry)];
    }
  }

  const std::size_t unionSize = s1.size() + s2.size() - intersection;

  std::size_t sameContextPairs = 0;
  if (sameContextCredit) {
    for (const auto& [context, count1] : unique1Contexts) {
      const auto it = unique2Contexts.find(context);
      if (it == unique2Contexts.end()) continue;
      // A replacement consumes one string from each side; both were counted
      // in the union, so the credit is twice the number of pairs.
      sameContextPairs += 2 * std::min(count1, it->second);
    }
  }

  const double numerator =
      static_cast<double>(intersection + sameContextPairs);
  return unionSize == 0 ? 1.0 : numerator / static_cast<double>(unionSize);
}

}  // namespace cookiepicker::core
