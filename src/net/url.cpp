#include "net/url.h"

#include <charconv>

#include "util/strings.h"

namespace cookiepicker::net {

using util::toLowerAscii;

std::optional<Url> Url::parse(std::string_view text) {
  const std::size_t schemeEnd = text.find("://");
  if (schemeEnd == std::string_view::npos || schemeEnd == 0) {
    return std::nullopt;
  }
  Url url;
  url.scheme_ = toLowerAscii(text.substr(0, schemeEnd));
  if (url.scheme_ != "http" && url.scheme_ != "https") return std::nullopt;
  url.port_ = url.scheme_ == "https" ? 443 : 80;

  std::string_view rest = text.substr(schemeEnd + 3);
  const std::size_t authorityEnd = rest.find_first_of("/?#");
  std::string_view authority = rest.substr(0, authorityEnd);
  if (authority.empty()) return std::nullopt;

  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const std::string_view portText = authority.substr(colon + 1);
    unsigned int port = 0;
    const auto [ptr, ec] = std::from_chars(
        portText.data(), portText.data() + portText.size(), port);
    if (ec == std::errc() && ptr == portText.data() + portText.size() &&
        port > 0 && port <= 65535) {
      url.port_ = static_cast<std::uint16_t>(port);
      authority = authority.substr(0, colon);
    }
  }
  url.host_ = toLowerAscii(authority);
  if (url.host_.empty()) return std::nullopt;

  if (authorityEnd == std::string_view::npos) {
    return url;
  }
  rest = rest.substr(authorityEnd);
  const std::size_t fragment = rest.find('#');
  if (fragment != std::string_view::npos) rest = rest.substr(0, fragment);

  const std::size_t queryStart = rest.find('?');
  if (queryStart == std::string_view::npos) {
    url.path_ = rest.empty() ? "/" : std::string(rest);
  } else {
    const std::string_view pathPart = rest.substr(0, queryStart);
    url.path_ = pathPart.empty() ? "/" : std::string(pathPart);
    url.query_ = std::string(rest.substr(queryStart + 1));
  }
  if (url.path_.empty() || url.path_[0] != '/') {
    url.path_ = "/" + url.path_;
  }
  return url;
}

Url Url::resolve(std::string_view reference) const {
  if (auto absolute = Url::parse(reference)) {
    return *absolute;
  }
  Url resolved = *this;
  resolved.query_.clear();
  if (reference.empty()) return resolved;

  if (reference.size() >= 2 && reference[0] == '/' && reference[1] == '/') {
    // Protocol-relative: "//host/path".
    if (auto absolute = Url::parse(std::string(scheme_) + ":" +
                                   std::string(reference))) {
      return *absolute;
    }
    return resolved;
  }
  const std::size_t fragment = reference.find('#');
  if (fragment != std::string_view::npos) {
    reference = reference.substr(0, fragment);
  }
  std::string_view queryPart;
  const std::size_t queryStart = reference.find('?');
  if (queryStart != std::string_view::npos) {
    queryPart = reference.substr(queryStart + 1);
    reference = reference.substr(0, queryStart);
  }
  if (reference.empty()) {
    // Pure-query reference keeps the base path.
    resolved.query_ = std::string(queryPart);
    return resolved;
  }
  if (reference[0] == '/') {
    resolved.path_ = std::string(reference);
  } else {
    // Relative to the base path's directory.
    const std::size_t lastSlash = path_.rfind('/');
    resolved.path_ = path_.substr(0, lastSlash + 1) + std::string(reference);
  }
  resolved.query_ = std::string(queryPart);
  return resolved;
}

std::string Url::origin() const {
  std::string result = scheme_ + "://" + host_;
  if (!hasDefaultPort()) {
    result += ":" + std::to_string(port_);
  }
  return result;
}

std::string Url::pathWithQuery() const {
  return query_.empty() ? path_ : path_ + "?" + query_;
}

std::string Url::toString() const { return origin() + pathWithQuery(); }

std::string registrableDomain(std::string_view host) {
  const std::size_t lastDot = host.rfind('.');
  if (lastDot == std::string_view::npos || lastDot == 0) {
    return std::string(host);
  }
  const std::size_t secondLastDot = host.rfind('.', lastDot - 1);
  if (secondLastDot == std::string_view::npos) {
    return std::string(host);
  }
  return std::string(host.substr(secondLastDot + 1));
}

bool hostMatchesDomain(std::string_view host, std::string_view domain) {
  if (domain.empty()) return false;
  // Leading dot in cookie Domain attributes is ignored (RFC 6265 behaviour).
  if (domain[0] == '.') domain = domain.substr(1);
  if (util::equalsIgnoreCase(host, domain)) return true;
  if (host.size() <= domain.size()) return false;
  const std::string_view suffix = host.substr(host.size() - domain.size());
  return util::equalsIgnoreCase(suffix, domain) &&
         host[host.size() - domain.size() - 1] == '.';
}

}  // namespace cookiepicker::net
