// Ablation: page-dynamics noise vs. the detector's noise defenses
// (design decisions 1, 4, 5): the level cut, CVCE's noise rules, and the
// s term of Formula 3. For each noise configuration we fetch the same page
// twice (as the regular/hidden pair would arrive) many times and report the
// similarity distributions plus how often each metric would cross the 0.85
// threshold — i.e. the false-positive pressure each defense absorbs.
#include <cstdio>

#include <memory>

#include "core/cvce.h"
#include "core/decision.h"
#include "core/rstm.h"
#include "html/parser.h"
#include "server/behaviors.h"
#include "server/generator.h"
#include "server/site.h"
#include "util/stats.h"

namespace {

using namespace cookiepicker;

struct NoiseConfig {
  const char* name;
  bool ads = false;
  bool structuralAds = false;
  bool headlines = false;
  bool timestamp = false;
  double layoutShuffle = 0.0;
};

std::shared_ptr<server::WebSite> makeSite(const NoiseConfig& config,
                                          util::SimClock& clock) {
  server::SiteConfig siteConfig;
  siteConfig.domain = "noise.example";
  siteConfig.title = "Noise Lab";
  siteConfig.category = "science";
  siteConfig.seed = 77;
  auto site = std::make_shared<server::WebSite>(siteConfig, clock);
  if (config.layoutShuffle > 0.0) {
    site->addBehavior(
        std::make_unique<server::LayoutShuffleNoise>(config.layoutShuffle));
  }
  if (config.ads || config.structuralAds) {
    site->addBehavior(
        std::make_unique<server::AdRotationNoise>(config.structuralAds));
  }
  if (config.headlines) {
    site->addBehavior(std::make_unique<server::HeadlineRotationNoise>());
  }
  if (config.timestamp) {
    site->addBehavior(std::make_unique<server::TimestampNoise>());
  }
  return site;
}

net::HttpRequest pageRequest() {
  net::HttpRequest request;
  request.url = *net::Url::parse("http://noise.example/page1");
  return request;
}

}  // namespace

int main() {
  std::printf("=== Noise ablation: fetch-pair similarity under page dynamics ===\n");
  std::printf("(identical cookies on both fetches — any metric firing here "
              "is a false positive)\n\n");

  const NoiseConfig configs[] = {
      {"calm (no dynamics)"},
      {"rotating ads", true, false, false, false, 0.0},
      {"structural ads", true, true, false, false, 0.0},
      {"rotating headlines", false, false, true, false, 0.0},
      {"timestamps", false, false, false, true, 0.0},
      {"layout shuffle p=0.45", false, false, false, false, 0.45},
      {"everything combined", true, true, true, true, 0.45},
  };

  constexpr int kPairs = 40;
  util::TextTable table({"noise", "tree sim (mean/min)",
                         "text sim (mean/min)", "text sim no-s (mean/min)",
                         "tree<=.85", "text<=.85", "both (FP)"});
  for (const NoiseConfig& config : configs) {
    util::SimClock clock;
    auto site = makeSite(config, clock);
    util::RunningStats treeSims;
    util::RunningStats textSims;
    util::RunningStats textSimsNoCredit;
    int treeFires = 0;
    int textFires = 0;
    int bothFire = 0;
    for (int pair = 0; pair < kPairs; ++pair) {
      const auto first =
          html::parseHtml(site->handle(pageRequest()).body);
      clock.advanceSeconds(3.0);
      const auto second =
          html::parseHtml(site->handle(pageRequest()).body);
      const dom::Node& rootA = core::comparisonRoot(*first);
      const dom::Node& rootB = core::comparisonRoot(*second);
      const double tree = core::nTreeSim(rootA, rootB, 5);
      const auto setA = core::extractContextContent(rootA);
      const auto setB = core::extractContextContent(rootB);
      const double text = core::nTextSim(setA, setB);
      const double textNoCredit =
          core::nTextSim(setA, setB, /*sameContextCredit=*/false);
      treeSims.add(tree);
      textSims.add(text);
      textSimsNoCredit.add(textNoCredit);
      if (tree <= 0.85) ++treeFires;
      if (text <= 0.85) ++textFires;
      if (tree <= 0.85 && text <= 0.85) ++bothFire;
    }
    auto meanMin = [](const util::RunningStats& stats) {
      return util::TextTable::formatDouble(stats.mean(), 3) + " / " +
             util::TextTable::formatDouble(stats.min(), 3);
    };
    table.addRow({config.name, meanMin(treeSims), meanMin(textSims),
                  meanMin(textSimsNoCredit),
                  std::to_string(treeFires) + "/" + std::to_string(kPairs),
                  std::to_string(textFires) + "/" + std::to_string(kPairs),
                  std::to_string(bothFire) + "/" + std::to_string(kPairs)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: ads/headlines/timestamps are fully absorbed (level\n"
      "cut, ad filter, s term, date filter) — similarities pinned at 1.0.\n"
      "Dropping the s term ('no-s' column) leaves headline rotation\n"
      "penalized. Only deliberate upper-level layout shuffling — the\n"
      "S1/S10/S27 pattern — drives both metrics under 0.85 and produces\n"
      "the paper's three false-useful sites.\n");
  return 0;
}
