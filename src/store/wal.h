// WAL/snapshot framing — the byte format both store files share.
//
// A log file is a one-line ASCII magic (version-bearing, so a format bump
// is detected before any binary parsing) followed by frames:
//
//   u32le payloadLen | u64le fnv1a64(payload) | payload
//
// The payload is text: "<seq>\t<typeName>\t<body>". Bodies may contain any
// bytes including newlines — the framing is length-prefixed, so the text
// inside never needs escaping. Snapshots reuse the identical frame format
// under a different magic; a snapshot is just a compacted log.
//
// The reader's contract is the crash model: it trusts a frame only if the
// full declared length is present AND the checksum matches, and it stops at
// the first frame that fails either test. An incomplete trailing frame is a
// *torn tail* (the expected residue of a crash mid-append) — benign, the
// valid prefix is authoritative. A full-length frame with a bad checksum is
// *corruption* (bit flip) — also stops the scan, also leaves the valid
// prefix authoritative, but is reported distinctly so fsck can tell an
// unlucky power cut from a sick disk. `validBytes` is the exact offset a
// writer must truncate to before resuming appends, otherwise the next
// append would be glued onto torn garbage and poison the whole suffix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cookiepicker::store {

inline constexpr std::string_view kWalMagic = "cookiepicker-wal-v1\n";
inline constexpr std::string_view kSnapMagic = "cookiepicker-snap-v1\n";

// Frames declaring a payload larger than this are treated as corruption —
// no legitimate record approaches it, and it stops a flipped length byte
// from turning into a 4 GiB read.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;

// Fixed frame header size: u32 length + u64 checksum.
inline constexpr std::size_t kFrameHeaderBytes = 12;

// Appends one framed payload to `out`.
void appendFrame(std::string& out, std::string_view payload);

// Builds the record payload "<seq>\t<typeName>\t<body>".
std::string encodeRecordPayload(std::uint64_t seq, std::string_view typeName,
                                std::string_view body);

// Frames "<seq>\t<typeName>\t<body>" directly into `out` — the hot-path
// spelling: the payload is composed in place after a reserved header that
// is patched once its length and checksum are known, so a caller reusing
// `out` as scratch appends with zero allocations at steady state.
void appendRecordFrame(std::string& out, std::uint64_t seq,
                       std::string_view typeName, std::string_view body);

// One successfully framed and parsed record. `type` is the wire name —
// deliberately a string, so records from a newer writer survive the trip
// through an older reader (skip + count, never fail).
struct ParsedRecord {
  std::uint64_t seq = 0;
  std::string type;
  std::string body;
};

struct ScanResult {
  std::vector<ParsedRecord> records;
  // Offset one past the last good frame (magic included). The resume
  // truncation point.
  std::size_t validBytes = 0;
  bool magicOk = false;
  bool tornTail = false;   // trailing bytes form an incomplete frame
  bool corrupt = false;    // a full-length frame failed its checksum
  std::size_t discardedBytes = 0;    // bytes past validBytes
  std::size_t malformedPayloads = 0; // intact frames with unparsable payloads
};

// Scans a whole log image. `magic` selects kWalMagic or kSnapMagic; a
// missing/wrong magic yields magicOk=false, validBytes=0 and no records.
ScanResult scanLog(std::string_view bytes, std::string_view magic);

}  // namespace cookiepicker::store
