// Figure 3 micro-benchmark: the paper's worked STM example (trees A and B,
// 14 and 8 nodes, maximum matching of 7 pairs), used here both as a
// correctness anchor printed at startup and as a micro-benchmark of the
// matching algorithms on the exact trees of the figure.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/tree_distance.h"
#include "core/rstm.h"
#include "core/stm.h"
#include "dom/builder.h"

namespace {

using namespace cookiepicker;

void BM_StmFigure3(benchmark::State& state) {
  const auto treeA = dom::figure3TreeA();
  const auto treeB = dom::figure3TreeB();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simpleTreeMatching(*treeA, *treeB));
  }
}
BENCHMARK(BM_StmFigure3);

void BM_StmFigure3WithMapping(benchmark::State& state) {
  const auto treeA = dom::figure3TreeA();
  const auto treeB = dom::figure3TreeB();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::simpleTreeMatchingWithMapping(*treeA, *treeB));
  }
}
BENCHMARK(BM_StmFigure3WithMapping);

void BM_RstmFigure3(benchmark::State& state) {
  const auto treeA = dom::figure3TreeA();
  const auto treeB = dom::figure3TreeB();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::restrictedSimpleTreeMatching(*treeA, *treeB, 5));
  }
}
BENCHMARK(BM_RstmFigure3);

void BM_SelkowFigure3(benchmark::State& state) {
  const auto treeA = dom::figure3TreeA();
  const auto treeB = dom::figure3TreeB();
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::selkowEditDistance(*treeA, *treeB));
  }
}
BENCHMARK(BM_SelkowFigure3);

void BM_ZhangShashaFigure3(benchmark::State& state) {
  const auto treeA = dom::figure3TreeA();
  const auto treeB = dom::figure3TreeB();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::zhangShashaEditDistance(*treeA, *treeB));
  }
}
BENCHMARK(BM_ZhangShashaFigure3);

}  // namespace

int main(int argc, char** argv) {
  using namespace cookiepicker;
  const auto treeA = dom::figure3TreeA();
  const auto treeB = dom::figure3TreeB();
  std::printf("=== Figure 3 correctness anchor ===\n");
  std::printf("|A| = %zu nodes (paper: 14), |B| = %zu nodes (paper: 8)\n",
              treeA->subtreeSize(), treeB->subtreeSize());
  std::printf("STM(A, B) = %zu matching pairs (paper: 7)\n\n",
              core::simpleTreeMatching(*treeA, *treeB));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
