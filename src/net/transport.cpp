#include "net/transport.h"

#include <cstdlib>

namespace cookiepicker::net {

bool bodyTruncated(const HttpResponse& response) {
  const auto contentLength = response.headers.get("Content-Length");
  if (!contentLength.has_value()) return false;
  char* end = nullptr;
  const unsigned long long declared =
      std::strtoull(contentLength->c_str(), &end, 10);
  if (end == contentLength->c_str()) return false;
  return declared > response.body.size();
}

std::string fetchFailureReason(const HttpResponse& response) {
  if (response.status == 0) {
    // Transport failure: the injected fault names itself via statusText.
    return response.statusText.empty() ? std::string("transport-error")
                                       : response.statusText;
  }
  if (response.status >= 500) {
    return "http-" + std::to_string(response.status);
  }
  if (bodyTruncated(response)) return "truncated-body";
  return {};
}

}  // namespace cookiepicker::net
