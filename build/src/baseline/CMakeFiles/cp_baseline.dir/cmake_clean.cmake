file(REMOVE_RECURSE
  "CMakeFiles/cp_baseline.dir/alternatives.cpp.o"
  "CMakeFiles/cp_baseline.dir/alternatives.cpp.o.d"
  "CMakeFiles/cp_baseline.dir/doppelganger.cpp.o"
  "CMakeFiles/cp_baseline.dir/doppelganger.cpp.o.d"
  "CMakeFiles/cp_baseline.dir/tree_distance.cpp.o"
  "CMakeFiles/cp_baseline.dir/tree_distance.cpp.o.d"
  "libcp_baseline.a"
  "libcp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
