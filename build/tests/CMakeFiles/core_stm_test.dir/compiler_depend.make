# Empty compiler generated dependencies file for core_stm_test.
# This may be replaced when dependencies are built.
