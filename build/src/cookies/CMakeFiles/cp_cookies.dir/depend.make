# Empty dependencies file for cp_cookies.
# This may be replaced when dependencies are built.
