# Empty dependencies file for roster_classification_test.
# This may be replaced when dependencies are built.
