// Trace record/replay: capture a live campaign once, rerun it offline.
#include <gtest/gtest.h>

#include "core/cookie_picker.h"
#include "net/trace.h"
#include "server/generator.h"
#include "test_support.h"

namespace cookiepicker::net {
namespace {

using testsupport::SimWorld;

TraceEntry makeEntry(const std::string& url, const std::string& body,
                     const std::string& cookies = "") {
  TraceEntry entry;
  entry.method = "GET";
  entry.url = url;
  entry.cookieHeader = cookies;
  entry.contentType = "text/html";
  entry.body = body;
  return entry;
}

// --- format ---------------------------------------------------------------

TEST(TraceFormat, RoundTripsEntries) {
  std::vector<TraceEntry> entries;
  TraceEntry entry = makeEntry("http://a.com/x", "<p>hi</p>", "a=1; b=2");
  entry.setCookies = {"sid=9; Max-Age=60", "u=v; Path=/x"};
  entry.status = 201;
  entries.push_back(entry);
  entries.push_back(makeEntry("http://b.com/", ""));

  const auto parsed = parseTrace(serializeTrace(entries));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].url, "http://a.com/x");
  EXPECT_EQ(parsed[0].cookieHeader, "a=1; b=2");
  EXPECT_EQ(parsed[0].status, 201);
  ASSERT_EQ(parsed[0].setCookies.size(), 2u);
  EXPECT_EQ(parsed[0].setCookies[1], "u=v; Path=/x");
  EXPECT_EQ(parsed[1].body, "");
}

TEST(TraceFormat, BinaryBodiesSurvive) {
  TraceEntry entry = makeEntry("http://a.com/img.png", "");
  entry.body = std::string("\x00\x01\nENTRY 5:fake\xff", 16);
  const auto parsed = parseTrace(serializeTrace({entry}));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].body, entry.body);
}

TEST(TraceFormat, CorruptInputStopsAtLastGoodEntry) {
  const std::string good = serializeTrace({makeEntry("http://a.com/", "x")});
  EXPECT_EQ(parseTrace(good + "ENTRY garbage").size(), 1u);
  EXPECT_TRUE(parseTrace("not a trace").empty());
  EXPECT_TRUE(parseTrace("").empty());
}

// --- recording --------------------------------------------------------------

TEST(Recording, CapturesExchangesThroughWrapper) {
  SimWorld world;
  const auto spec = world.addGenericSite("rec.example");
  // Re-register the host behind a recorder.
  auto recorder = std::make_shared<RecordingHandler>(
      server::buildSite(spec, world.clock));
  world.network.registerHost(spec.domain, recorder);

  world.browser.visit(world.urlFor(spec));
  EXPECT_GT(recorder->entries().size(), 3u);  // container + objects
  EXPECT_EQ(recorder->entries()[0].url, "http://rec.example/");
  EXPECT_EQ(recorder->entries()[0].status, 200);
  EXPECT_FALSE(recorder->entries()[0].setCookies.empty());
}

// --- replay -------------------------------------------------------------------

TEST(Replay, ServesRecordedResponses) {
  std::vector<TraceEntry> entries = {
      makeEntry("http://r.example/", "<body><p>recorded</p></body>")};
  entries[0].setCookies = {"trk=1; Max-Age=99"};
  ReplayHandler replay(entries);

  HttpRequest request;
  request.url = *Url::parse("http://r.example/");
  const HttpResponse response = replay.handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("recorded"), std::string::npos);
  EXPECT_EQ(response.setCookieHeaders().size(), 1u);
}

TEST(Replay, MatchesOnCookieHeader) {
  ReplayHandler replay({makeEntry("http://r.example/", "plain", ""),
                        makeEntry("http://r.example/", "personalized",
                                  "pref=1")});
  HttpRequest bare;
  bare.url = *Url::parse("http://r.example/");
  EXPECT_EQ(replay.handle(bare).body, "plain");
  HttpRequest withCookie = bare;
  withCookie.headers.set("Cookie", "pref=1");
  EXPECT_EQ(replay.handle(withCookie).body, "personalized");
}

TEST(Replay, SequentialResponsesThenLastRepeats) {
  ReplayHandler replay({makeEntry("http://r.example/", "first"),
                        makeEntry("http://r.example/", "second")});
  HttpRequest request;
  request.url = *Url::parse("http://r.example/");
  EXPECT_EQ(replay.handle(request).body, "first");
  EXPECT_EQ(replay.handle(request).body, "second");
  EXPECT_EQ(replay.handle(request).body, "second");  // repeats
}

TEST(Replay, UnknownRequestsAre404AndCounted) {
  ReplayHandler replay({makeEntry("http://r.example/", "x")});
  HttpRequest request;
  request.url = *Url::parse("http://r.example/other");
  EXPECT_EQ(replay.handle(request).status, 404);
  EXPECT_EQ(replay.misses(), 1u);
}

// --- end to end: capture a campaign, replay it, same verdicts -----------------

TEST(Replay, CapturedCampaignReproducesVerdictsOffline) {
  server::SiteSpec spec;
  spec.label = "P";
  spec.domain = "cap.example";
  spec.category = "arts";
  spec.seed = 19;
  spec.preferenceCookies = 1;
  spec.preferenceIntensity = 2;
  spec.containerTrackers = 1;

  // Pass 1: live site behind a recorder.
  std::string traceText;
  std::string liveJar;
  {
    SimWorld world(99);
    auto recorder = std::make_shared<RecordingHandler>(
        server::buildSite(spec, world.clock));
    world.network.registerHost(spec.domain, recorder);
    core::CookiePicker picker(world.browser);
    for (int i = 0; i < 6; ++i) {
      picker.browse("http://cap.example/page" + std::to_string(i + 1));
    }
    traceText = recorder->serialize();
    liveJar = world.browser.jar().serialize();
  }

  // Pass 2: replay the trace with no live site at all.
  {
    SimWorld world(99);
    world.network.registerHost(
        spec.domain,
        std::make_shared<ReplayHandler>(parseTrace(traceText)));
    core::CookiePicker picker(world.browser);
    for (int i = 0; i < 6; ++i) {
      picker.browse("http://cap.example/page" + std::to_string(i + 1));
    }
    // Same cookies, same usefulness verdicts.
    EXPECT_EQ(world.browser.jar().serialize(), liveJar);
  }
}

}  // namespace
}  // namespace cookiepicker::net
