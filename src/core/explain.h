// Human-readable explanations for usefulness decisions.
//
// The paper's recovery button exists because users only see *that* a page
// broke; a production extension additionally wants to show *why* a cookie
// was kept or blocked. This module diffs the regular and hidden page
// versions at the level the detection algorithms work on and renders the
// evidence: which structural regions only exist in one version, and which
// text content appeared or disappeared.
#pragma once

#include <string>
#include <vector>

#include "core/decision.h"
#include "dom/node.h"

namespace cookiepicker::core {

struct DifferenceExplanation {
  DecisionResult decision;

  // Structural regions (element paths like "body>div>main>section") present
  // in only one version, largest first, capped at `maxItems`.
  std::vector<std::string> structureOnlyInRegular;
  std::vector<std::string> structureOnlyInHidden;

  // Context-content strings unique to each version (same cap).
  std::vector<std::string> textOnlyInRegular;
  std::vector<std::string> textOnlyInHidden;

  // One-paragraph rendering for logs / the recovery dialog.
  std::string summary() const;
};

struct ExplainOptions {
  DecisionConfig decision;
  std::size_t maxItems = 5;
};

// Runs the decision algorithms and gathers the supporting evidence.
DifferenceExplanation explainDifference(const dom::Node& regularDocument,
                                        const dom::Node& hiddenDocument,
                                        const ExplainOptions& options = {});

// Evidence-gathering half of explainDifference: fills the four
// structure/text lists without re-running the decision (the caller supplies
// `explanation.decision` itself, typically from a verdict it already has —
// the audit trail uses this to attach evidence to cookie-caused verdicts
// without paying for a second detection pass).
void collectDifferenceEvidence(const dom::Node& regularDocument,
                               const dom::Node& hiddenDocument,
                               const ExplainOptions& options,
                               DifferenceExplanation& explanation);

}  // namespace cookiepicker::core
