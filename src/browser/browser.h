// Simulated web browser.
//
// Implements the page-load pipeline of Figure 1: the container-page request
// (1)/(2), parsing into the regular DOM tree, and the follow-up object
// requests — plus the extension hooks CookiePicker needs: the hidden request
// (3)/(4) that refetches only the container page with a group of persistent
// cookies stripped, and a pluggable filter that suppresses blocked cookies
// on outgoing regular requests.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cookies/jar.h"
#include "cookies/policy.h"
#include "html/stream_snapshot.h"
#include "net/transport.h"
#include "browser/page.h"
#include "provenance/taint.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cookiepicker::browser {

// How page bodies become detection snapshots.
//
//  * Streaming (the default): the tokenizer feeds html::StreamingSnapshot-
//    Builder directly — one pass, no dom::Node tree is ever built, and
//    PageView::document / HiddenFetchResult::document stay null. Consumers
//    that genuinely need a node tree (the DecisionConfig::useSnapshotFastPath
//    escape hatch, audit evidence collection, the Doppelganger baseline)
//    re-parse the retained HTML lazily.
//  * Reference: the original parseHtml + TreeSnapshot(Node) pipeline. Kept
//    as the differential-testing and A/B-measurement twin; both modes
//    produce byte-identical snapshots and subresource lists (pinned by
//    tests/snapshot_differential_test.cpp and the browser tests).
enum class DomMode {
  Streaming,
  Reference,
};

// User think time between page views. Mah's empirical HTTP traffic model
// [12] gives heavy-tailed think times with means above 10 seconds; we use a
// log-normal fit with a floor. The FORCUM process runs inside this window.
class ThinkTimeModel {
 public:
  explicit ThinkTimeModel(double medianSeconds = 12.0,
                          double sigma = 0.9,
                          double floorSeconds = 1.0);
  double sampleMs(util::Pcg32& rng) const;

 private:
  double mu_;
  double sigma_;
  double floorMs_;
};

// How hiddenFetch responds to transport failures (connection drops,
// timeouts, 5xx, truncated bodies). Backoff is exponential over the
// *virtual* clock with deterministic jitter drawn from the session RNG, so
// a faulty run replays byte-identically; a fault-free run draws nothing
// extra and behaves exactly as if no retry layer existed.
struct RetryPolicy {
  int maxAttempts = 3;              // total tries, first attempt included
  double initialBackoffMs = 400.0;  // wait before the first retry
  double backoffMultiplier = 2.0;
  double maxBackoffMs = 6400.0;
  double jitterFraction = 0.25;     // backoff * (1 ± jitterFraction)
  // Retries a session may spend across its lifetime. Once exhausted,
  // hidden fetches degrade after their first failed attempt instead of
  // hammering a host that is clearly down.
  std::uint64_t sessionRetryBudget = 256;
};

struct HiddenFetchResult {
  // Reference-mode only: the parsed node tree. Null in streaming mode —
  // callers needing a tree re-parse `html` lazily.
  std::unique_ptr<dom::Node> document;
  // Flattened detection view of the response body, built at parse time like
  // PageView::snapshot.
  std::shared_ptr<const dom::TreeSnapshot> snapshot;
  std::string html;
  // Provenance map for `html`, mirroring PageView::provenance. Null unless
  // the browser opted in and the origin's header decoded cleanly — degraded
  // or truncated responses typically lose it, which attribution treats as
  // "no taint data" rather than guessing.
  std::shared_ptr<const provenance::ProvenanceMap> provenance;
  // Total virtual time spent: every attempt's round trip plus backoffs.
  double latencyMs = 0.0;
  int status = 0;
  // Names of the persistent cookies that were stripped from the request —
  // the "group of cookies whose usefulness will be tested" (Section 3.2).
  std::vector<cookies::CookieKey> strippedCookies;
  // Dispatches issued for this fetch (1 = clean first try).
  int attempts = 0;
  // The final response body arrived shorter than its Content-Length.
  bool truncated = false;
  // Every allowed attempt failed; `document` holds whatever the last
  // attempt returned (an error page, a truncated body, or nothing) and
  // must not be compared against the regular copy.
  bool degraded = false;
  std::string degradedReason;  // e.g. "connection-drop", "http-503"

  // True when the result is safe to feed into a FORCUM comparison.
  bool usable() const { return status == 200 && !degraded; }
};

// The issue half of a hidden fetch: the request with the tested cookie
// group stripped, ready to dispatch, plus the group's resolved keys. Split
// out so callers (the socket service tier, the load bench) can issue many
// hidden requests asynchronously and complete each one as its response
// arrives; Browser::hiddenFetch composes the two halves synchronously.
struct HiddenFetchPlan {
  net::HttpRequest request;
  std::vector<cookies::CookieKey> strippedCookies;
};

class Browser {
 public:
  Browser(net::Transport& transport, util::SimClock& clock,
          cookies::CookiePolicy policy = cookies::CookiePolicy::recommended(),
          std::uint64_t seed = 11);

  // Full page view: follows redirects (bounded), stores cookies per policy,
  // parses the container into the regular DOM tree, fetches embedded
  // objects. Advances the simulated clock by the load time.
  PageView visit(const net::Url& url);
  PageView visit(const std::string& url);

  // The hidden request of Section 3.1: same URI and headers as the saved
  // container request, with persistent cookies matching `excludePersistent`
  // removed from the Cookie header. Fetches the container page only, follows
  // no redirects, triggers no object loads, and ignores Set-Cookie headers
  // (it must not perturb the jar the regular session uses). Advances the
  // clock by its round-trip latency (it runs during think time, so this
  // costs the user nothing).
  HiddenFetchResult hiddenFetch(
      const PageView& view,
      const std::function<bool(const cookies::CookieRecord&)>&
          excludePersistent);

  // Issue half of hiddenFetch: builds the cookie-stripped request without
  // dispatching it. Resolves the tested group against the live jar, so call
  // it at the clock time the fetch should see.
  HiddenFetchPlan planHiddenFetch(
      const PageView& view,
      const std::function<bool(const cookies::CookieRecord&)>&
          excludePersistent);

  // Completion half: parses the final attempt's response into a
  // HiddenFetchResult and advances the clock by that attempt's round trip
  // (earlier attempts and backoffs must already be accounted —
  // `latencySoFarMs` carries them into the result's total).
  HiddenFetchResult completeHiddenFetch(HiddenFetchPlan plan,
                                        const net::Exchange& finalExchange,
                                        int attempts, double latencySoFarMs,
                                        bool degraded,
                                        std::string degradedReason);

  // Installed by CookiePicker once training ends: persistent cookies for
  // which the filter returns true are withheld from regular requests
  // ("no longer be transmitted to the corresponding Web site").
  void setPersistentSendFilter(
      std::function<bool(const cookies::CookieRecord&)> filter) {
    persistentSendFilter_ = std::move(filter);
  }
  void clearPersistentSendFilter() { persistentSendFilter_ = nullptr; }

  // Simulates the user pausing between page views; advances the clock.
  double think();

  DomMode domMode() const { return domMode_; }
  void setDomMode(DomMode mode) { domMode_ = mode; }

  // Opt into per-cookie taint data: container and hidden requests carry
  // X-Want-Provenance, response maps are decoded onto PageView /
  // HiddenFetchResult, and streaming snapshots get taint-stamped rows.
  // Off (the default) leaves every request and snapshot byte-identical to a
  // provenance-free build.
  void setWantProvenance(bool want) { wantProvenance_ = want; }
  bool wantProvenance() const { return wantProvenance_; }

  void setHiddenRetryPolicy(RetryPolicy policy) {
    hiddenRetryPolicy_ = policy;
  }
  const RetryPolicy& hiddenRetryPolicy() const { return hiddenRetryPolicy_; }
  // Retries spent so far against hiddenRetryPolicy().sessionRetryBudget.
  std::uint64_t hiddenRetriesUsed() const { return hiddenRetriesUsed_; }

  cookies::CookieJar& jar() { return jar_; }
  const cookies::CookieJar& jar() const { return jar_; }
  util::SimClock& clock() { return clock_; }
  const cookies::CookiePolicy& policy() const { return policy_; }
  void setPolicy(cookies::CookiePolicy policy) { policy_ = policy; }

  // Total subresource fetches issued (object requests), for overhead
  // accounting against the Doppelganger baseline.
  std::uint64_t objectRequestCount() const { return objectRequests_; }

  static constexpr int kMaxRedirects = 5;
  // 2007-era browsers opened a handful of parallel connections per host;
  // object fetch wall time is modeled as ceil(n / parallelism) batches.
  static constexpr int kParallelConnections = 4;

 private:
  net::HttpRequest buildRequest(
      const net::Url& url, const net::Url& documentUrl,
      net::RequestKind kind = net::RequestKind::Container);
  void storeResponseCookies(const net::HttpResponse& response,
                            const net::Url& requestUrl,
                            const net::Url& documentUrl);
  std::vector<net::Url> collectSubresources(const dom::Node& document,
                                            const net::Url& baseUrl) const;
  std::vector<net::Url> resolveSubresources(const html::StreamPageInfo& page,
                                            const net::Url& documentUrl) const;
  // Decodes X-Cookie-Provenance when wantProvenance_ is set; null on absent
  // or malformed headers (strict parse — a torn map is worthless).
  std::shared_ptr<const provenance::ProvenanceMap> extractProvenance(
      const net::HttpResponse& response) const;

  net::Transport& transport_;
  util::SimClock& clock_;
  cookies::CookiePolicy policy_;
  cookies::CookieJar jar_;
  util::Pcg32 rng_;
  ThinkTimeModel thinkTime_;
  std::function<bool(const cookies::CookieRecord&)> persistentSendFilter_;
  DomMode domMode_ = DomMode::Streaming;
  bool wantProvenance_ = false;
  // Retained across page loads: its scratch (token buffers, open stack,
  // per-tag info cache) makes steady-state builds allocation-light.
  html::StreamingSnapshotBuilder streamBuilder_;
  std::uint64_t objectRequests_ = 0;
  RetryPolicy hiddenRetryPolicy_;
  std::uint64_t hiddenRetriesUsed_ = 0;
};

}  // namespace cookiepicker::browser
