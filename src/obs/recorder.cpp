#include "obs/recorder.h"

namespace cookiepicker::obs {

namespace detail {
thread_local constinit ObsSinks t_sinks;
}  // namespace detail

ScopedObsSession::ScopedObsSession(MetricsRegistry* metrics,
                                   AuditTrail* audit)
    : previous_(detail::t_sinks) {
  detail::t_sinks.metrics = metrics;
  detail::t_sinks.audit = audit;
}

ScopedObsSession::~ScopedObsSession() { detail::t_sinks = previous_; }

}  // namespace cookiepicker::obs
