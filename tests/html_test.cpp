#include <gtest/gtest.h>

#include "dom/serialize.h"
#include "html/entities.h"
#include "html/parser.h"
#include "html/tokenizer.h"

namespace cookiepicker::html {
namespace {

using dom::structureSignature;
using dom::toHtml;

// --- entities ---------------------------------------------------------------

TEST(Entities, NamedReferences) {
  EXPECT_EQ(decodeEntities("a &amp; b"), "a & b");
  EXPECT_EQ(decodeEntities("&lt;div&gt;"), "<div>");
  EXPECT_EQ(decodeEntities("&quot;x&quot;"), "\"x\"");
}

TEST(Entities, NumericDecimalAndHex) {
  EXPECT_EQ(decodeEntities("&#65;"), "A");
  EXPECT_EQ(decodeEntities("&#x41;"), "A");
  EXPECT_EQ(decodeEntities("&#X41;"), "A");
}

TEST(Entities, MultiByteUtf8) {
  EXPECT_EQ(decodeEntities("&euro;"), "\xE2\x82\xAC");
  EXPECT_EQ(decodeEntities("&#233;"), "\xC3\xA9");   // é
  EXPECT_EQ(decodeEntities("&#x1F600;"), "\xF0\x9F\x98\x80");
}

TEST(Entities, InvalidCodePointsBecomeReplacement) {
  EXPECT_EQ(decodeEntities("&#xD800;"), "\xEF\xBF\xBD");   // surrogate
  EXPECT_EQ(decodeEntities("&#1114112;"), "\xEF\xBF\xBD"); // > U+10FFFF
}

TEST(Entities, UnknownOrMalformedPassThrough) {
  EXPECT_EQ(decodeEntities("&bogus;"), "&bogus;");
  EXPECT_EQ(decodeEntities("a & b"), "a & b");      // bare ampersand
  EXPECT_EQ(decodeEntities("&amp"), "&amp");        // missing semicolon
  EXPECT_EQ(decodeEntities("&;"), "&;");
  EXPECT_EQ(decodeEntities("&#xZZ;"), "&#xZZ;");
}

TEST(Entities, AdjacentReferences) {
  EXPECT_EQ(decodeEntities("&lt;&lt;&gt;&gt;"), "<<>>");
}

TEST(Entities, Html4TableSpotChecks) {
  EXPECT_EQ(decodeEntities("&Ntilde;"), "\xC3\x91");      // Ñ
  EXPECT_EQ(decodeEntities("&yuml;"), "\xC3\xBF");        // ÿ
  EXPECT_EQ(decodeEntities("&alpha;&Omega;"),
            "\xCE\xB1\xCE\xA9");                          // αΩ
  EXPECT_EQ(decodeEntities("&ne;"), "\xE2\x89\xA0");      // ≠
  EXPECT_EQ(decodeEntities("&hearts;"), "\xE2\x99\xA5");  // ♥
  EXPECT_EQ(decodeEntities("&OElig;"), "\xC5\x92");       // Œ
  EXPECT_EQ(decodeEntities("&sup2;"), "\xC2\xB2");        // ²
  EXPECT_EQ(decodeEntities("&rArr;"), "\xE2\x87\x92");    // ⇒
}

TEST(Entities, CaseSensitiveNames) {
  // &Delta; and &delta; are different characters; &AMP; is not defined in
  // the table (lenient passthrough).
  EXPECT_EQ(decodeEntities("&Delta;"), "\xCE\x94");
  EXPECT_EQ(decodeEntities("&delta;"), "\xCE\xB4");
  EXPECT_EQ(decodeEntities("&AMP;"), "&AMP;");
}

// --- tokenizer ---------------------------------------------------------------

TEST(Tokenizer, SimpleTagsAndText) {
  const auto tokens = Tokenizer::tokenizeAll("<p>hello</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::StartTag);
  EXPECT_EQ(tokens[0].name, "p");
  EXPECT_EQ(tokens[1].type, TokenType::Text);
  EXPECT_EQ(tokens[1].text, "hello");
  EXPECT_EQ(tokens[2].type, TokenType::EndTag);
}

TEST(Tokenizer, TagNamesLowercased) {
  const auto tokens = Tokenizer::tokenizeAll("<DiV></DIV>");
  EXPECT_EQ(tokens[0].name, "div");
  EXPECT_EQ(tokens[1].name, "div");
}

TEST(Tokenizer, AttributesAllQuoteStyles) {
  const auto tokens = Tokenizer::tokenizeAll(
      "<a href=\"/x\" title='hi there' data-k=v disabled>");
  ASSERT_EQ(tokens.size(), 1u);
  const auto& attributes = tokens[0].attributes;
  ASSERT_EQ(attributes.size(), 4u);
  EXPECT_EQ(attributes[0].name, "href");
  EXPECT_EQ(attributes[0].value, "/x");
  EXPECT_EQ(attributes[1].value, "hi there");
  EXPECT_EQ(attributes[2].value, "v");
  EXPECT_EQ(attributes[3].name, "disabled");
  EXPECT_EQ(attributes[3].value, "");
}

TEST(Tokenizer, DuplicateAttributesFirstWins) {
  const auto tokens = Tokenizer::tokenizeAll("<a id=one id=two>");
  ASSERT_EQ(tokens[0].attributes.size(), 1u);
  EXPECT_EQ(tokens[0].attributes[0].value, "one");
}

TEST(Tokenizer, AttributeValuesEntityDecoded) {
  const auto tokens = Tokenizer::tokenizeAll("<a title=\"a &amp; b\">");
  EXPECT_EQ(tokens[0].attributes[0].value, "a & b");
}

TEST(Tokenizer, SelfClosingFlag) {
  const auto tokens = Tokenizer::tokenizeAll("<br/><img src=x />");
  EXPECT_TRUE(tokens[0].selfClosing);
  EXPECT_TRUE(tokens[1].selfClosing);
}

TEST(Tokenizer, Comments) {
  const auto tokens = Tokenizer::tokenizeAll("<!-- hello -->");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::Comment);
  EXPECT_EQ(tokens[0].text, " hello ");
}

TEST(Tokenizer, UnterminatedCommentConsumesRest) {
  const auto tokens = Tokenizer::tokenizeAll("<!-- oops <p>x</p>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::Comment);
}

TEST(Tokenizer, Doctype) {
  const auto tokens = Tokenizer::tokenizeAll("<!DOCTYPE HTML>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::Doctype);
  EXPECT_EQ(tokens[0].name, "html");
}

TEST(Tokenizer, BogusCommentFromProcessingInstruction) {
  const auto tokens = Tokenizer::tokenizeAll("<?xml version=\"1.0\"?><p>");
  EXPECT_EQ(tokens[0].type, TokenType::Comment);
  EXPECT_EQ(tokens[1].type, TokenType::StartTag);
}

TEST(Tokenizer, RawTextScriptContent) {
  const auto tokens =
      Tokenizer::tokenizeAll("<script>if (a<b) x=\"</p>\";</script>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::Text);
  EXPECT_EQ(tokens[1].text, "if (a<b) x=\"</p>\";");
  EXPECT_EQ(tokens[2].type, TokenType::EndTag);
  EXPECT_EQ(tokens[2].name, "script");
}

TEST(Tokenizer, RawTextTitleIsEntityDecoded) {
  const auto tokens = Tokenizer::tokenizeAll("<title>A &amp; B</title>");
  EXPECT_EQ(tokens[1].text, "A & B");
}

TEST(Tokenizer, RawTextUnterminatedConsumesRest) {
  const auto tokens = Tokenizer::tokenizeAll("<style>p{} <div>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].text, "p{} <div>");
}

TEST(Tokenizer, LoneAngleBracketIsText) {
  const auto tokens = Tokenizer::tokenizeAll("a < b");
  ASSERT_EQ(tokens.size(), 2u);  // "a " then "< b"
  EXPECT_EQ(tokens[0].text, "a ");
  EXPECT_EQ(tokens[1].text, "< b");
}

TEST(Tokenizer, TextEntityDecoded) {
  const auto tokens = Tokenizer::tokenizeAll("<p>1 &lt; 2</p>");
  EXPECT_EQ(tokens[1].text, "1 < 2");
}

// --- parser -------------------------------------------------------------------

TEST(Parser, WrapsBareContentInSkeleton) {
  auto document = parseHtml("<p>hi</p>");
  EXPECT_EQ(structureSignature(*document), "html(head,body(p))");
}

TEST(Parser, EmptyInputStillProducesSkeleton) {
  auto document = parseHtml("");
  EXPECT_EQ(structureSignature(*document), "html(head,body)");
}

TEST(Parser, FullDocumentStructure) {
  auto document = parseHtml(
      "<!DOCTYPE html><html><head><title>t</title></head>"
      "<body><div><p>x</p></div></body></html>");
  EXPECT_EQ(structureSignature(*document),
            "html(head(title),body(div(p)))");
}

TEST(Parser, HeadContentGoesToHead) {
  auto document = parseHtml(
      "<meta charset=utf-8><link rel=stylesheet href=a.css><p>x</p>");
  EXPECT_EQ(structureSignature(*document),
            "html(head(meta,link),body(p))");
}

TEST(Parser, ScriptBeforeBodyStaysInHead) {
  auto document = parseHtml("<script>x()</script><p>y</p>");
  EXPECT_EQ(structureSignature(*document),
            "html(head(script),body(p))");
}

TEST(Parser, UnclosedParagraphsAutoClose) {
  auto document = parseHtml("<body><p>one<p>two<div>three</div>");
  EXPECT_EQ(structureSignature(*document),
            "html(head,body(p,p,div))");
}

TEST(Parser, ListItemsAutoClose) {
  auto document = parseHtml("<ul><li>a<li>b<li>c</ul>");
  EXPECT_EQ(structureSignature(*document),
            "html(head,body(ul(li,li,li)))");
}

TEST(Parser, TableCellsAutoClose) {
  auto document =
      parseHtml("<table><tr><td>a<td>b<tr><td>c</table>");
  EXPECT_EQ(structureSignature(*document),
            "html(head,body(table(tr(td,td),tr(td))))");
}

TEST(Parser, DefinitionTermsAutoClose) {
  auto document = parseHtml("<dl><dt>t<dd>d<dt>t2</dl>");
  EXPECT_EQ(structureSignature(*document),
            "html(head,body(dl(dt,dd,dt)))");
}

TEST(Parser, VoidElementsTakeNoChildren) {
  auto document = parseHtml("<body><br><img src=x><p>after</p>");
  EXPECT_EQ(structureSignature(*document),
            "html(head,body(br,img,p))");
}

TEST(Parser, StrayEndTagIgnored) {
  auto document = parseHtml("<body><div>x</span></div>");
  EXPECT_EQ(structureSignature(*document), "html(head,body(div))");
}

TEST(Parser, MisnestedEndTagClosesToMatch) {
  // </div> closes the span implicitly.
  auto document = parseHtml("<div><span>x</div><p>y</p>");
  EXPECT_EQ(structureSignature(*document),
            "html(head,body(div(span),p))");
}

TEST(Parser, CommentsPreserved) {
  auto document = parseHtml("<body><!-- note --><p>x</p>");
  const dom::Node* body = document->findFirst("body");
  ASSERT_NE(body, nullptr);
  ASSERT_GE(body->childCount(), 2u);
  EXPECT_TRUE(body->child(0).isComment());
}

TEST(Parser, InterElementWhitespaceDropped) {
  auto document = parseHtml("<div>\n  <p>x</p>\n  </div>");
  const dom::Node* div = document->findFirst("div");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->childCount(), 1u);
}

TEST(Parser, WhitespaceKeptInsidePre) {
  auto document = parseHtml("<pre>  keep\n  this  </pre>");
  const dom::Node* pre = document->findFirst("pre");
  ASSERT_NE(pre, nullptr);
  ASSERT_EQ(pre->childCount(), 1u);
  EXPECT_EQ(pre->child(0).value(), "  keep\n  this  ");
}

TEST(Parser, OptionDropdownAutoCloses) {
  auto document =
      parseHtml("<select><option>a<option>b</select>");
  EXPECT_EQ(structureSignature(*document),
            "html(head,body(select(option,option)))");
}

TEST(Parser, TextBeforeAnyTagForcesBody) {
  auto document = parseHtml("hello <b>world</b>");
  const dom::Node* body = document->findFirst("body");
  ASSERT_NE(body, nullptr);
  EXPECT_TRUE(body->child(0).isText());
}

TEST(Parser, DuplicateHtmlTagMergesAttributes) {
  auto document = parseHtml("<html lang=en><html lang=fr dir=ltr><body>");
  const dom::Node* html = document->findFirst("html");
  ASSERT_NE(html, nullptr);
  EXPECT_EQ(html->attribute("lang").value_or(""), "en");   // first wins
  EXPECT_EQ(html->attribute("dir").value_or(""), "ltr");   // new ones added
}

TEST(Parser, ConsecutiveTextChunksMerge) {
  // The tokenizer may split text at entity boundaries; the DOM gets one node.
  auto document = parseHtml("<p>a&amp;b</p>");
  const dom::Node* p = document->findFirst("p");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->childCount(), 1u);
  EXPECT_EQ(p->child(0).value(), "a&b");
}

TEST(Parser, DeterministicOnMalformedInput) {
  const std::string malformed =
      "<div><p>a<div><span>b</p></div><table><td>x</div>";
  const std::string first = dom::toDebugString(*parseHtml(malformed));
  const std::string second = dom::toDebugString(*parseHtml(malformed));
  EXPECT_EQ(first, second);
}

TEST(Parser, ReparseSerializedTreeIsStable) {
  const std::string input =
      "<!DOCTYPE html><body><div id=a>text<p>para<ul><li>x<li>y</ul>"
      "<!--c--><script>s<t()</script>";
  auto once = parseHtml(input);
  auto twice = parseHtml(toHtml(*once));
  EXPECT_EQ(dom::toDebugString(*once), dom::toDebugString(*twice));
}

TEST(Parser, IsVoidElement) {
  EXPECT_TRUE(isVoidElement("br"));
  EXPECT_TRUE(isVoidElement("meta"));
  EXPECT_FALSE(isVoidElement("div"));
}

}  // namespace
}  // namespace cookiepicker::html
