# Empty compiler generated dependencies file for bench_detection_scaling.
# This may be replaced when dependencies are built.
