// Detection hot-path benchmark: reference dom::Node implementations vs the
// snapshot fast path, on regular/hidden page pairs fetched from the Table 1
// and Table 2 rosters. Measures detection steps per second and heap bytes
// allocated per step (via global operator new/delete accounting), checks
// in-loop that both paths return identical decisions, and writes the
// results as JSON (argv[1], default BENCH_hotpath.json) so the numbers are
// versioned alongside the code that produced them.
//
// Build Release: the speedup gate in tools/bench.sh reads the JSON this
// emits and EXPERIMENTS.md quotes it.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "core/decision.h"
#include "dom/interner.h"
#include "dom/snapshot.h"
#include "html/parser.h"
#include "html/stream_snapshot.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "server/generator.h"
#include "store/store.h"
#include "util/clock.h"

// --- allocation accounting ----------------------------------------------------
// Every operator-new in the process funnels through these counters; the
// bench snapshots them around each timed loop. Deliberately minimal: no
// alignment overloads (nothing in the hot path over-aligns), malloc_usable
// size is not consulted (requested bytes are what the code asked for).

namespace {
std::atomic<std::uint64_t> g_allocBytes{0};
std::atomic<std::uint64_t> g_allocCalls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocBytes.fetch_add(size, std::memory_order_relaxed);
  g_allocCalls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace cookiepicker;

struct PagePair {
  std::unique_ptr<dom::Node> regular;
  std::unique_ptr<dom::Node> hidden;
  std::shared_ptr<const dom::TreeSnapshot> regularSnapshot;
  std::shared_ptr<const dom::TreeSnapshot> hiddenSnapshot;
  // Raw bodies, for the end-to-end parse-pipeline comparison.
  std::string regularHtml;
  std::string hiddenHtml;
};

// Regular/hidden document pairs the way FORCUM produces them: crawl each
// roster site until cookies flow, then pair the saved view with a hidden
// fetch that strips every persistent cookie.
std::vector<PagePair> buildPairs(const std::vector<server::SiteSpec>& roster,
                                 std::uint64_t seed) {
  util::SimClock serverClock;
  net::Network network(seed);
  server::registerRoster(network, serverClock, roster);

  std::vector<PagePair> pairs;
  pairs.reserve(roster.size());
  for (const server::SiteSpec& spec : roster) {
    util::SimClock clock;
    browser::Browser browser(network, clock,
                             cookies::CookiePolicy::recommended(), seed);
    // Reference mode: the bench needs the node trees to time the reference
    // loops against (the streaming pipeline is timed from the raw HTML).
    browser.setDomMode(browser::DomMode::Reference);
    browser.visit("http://" + spec.domain + "/page0");
    browser.visit("http://" + spec.domain + "/page1");
    browser::PageView view = browser.visit("http://" + spec.domain + "/page0");
    browser::HiddenFetchResult hidden = browser.hiddenFetch(
        view, [](const cookies::CookieRecord&) { return true; });
    if (view.document == nullptr || hidden.document == nullptr) continue;
    PagePair pair;
    pair.regular = std::move(view.document);
    pair.hidden = std::move(hidden.document);
    pair.regularSnapshot = std::move(view.snapshot);
    pair.hiddenSnapshot = std::move(hidden.snapshot);
    pair.regularHtml = std::move(view.containerHtml);
    pair.hiddenHtml = std::move(hidden.html);
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

struct LoopResult {
  double stepsPerSec = 0.0;
  double bytesPerStep = 0.0;
  double allocsPerStep = 0.0;
};

double medianOf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

template <typename Step>
LoopResult timedLoop(int reps, std::size_t pairCount, Step&& step) {
  // Best-of-3 sampling: the work is deterministic, so the fastest sample is
  // the least-perturbed measurement — single-pass timings on a shared
  // machine swing enough to flip the bench.sh ratio gates.
  constexpr int kSamples = 3;
  const int sampleReps = std::max(1, reps / kSamples);
  const std::uint64_t bytesBefore =
      g_allocBytes.load(std::memory_order_relaxed);
  const std::uint64_t callsBefore =
      g_allocCalls.load(std::memory_order_relaxed);
  double bestMsPerRep = 0.0;
  int repsRun = 0;
  for (int sample = 0; sample < kSamples; ++sample) {
    const util::StopWatch watch;
    for (int rep = 0; rep < sampleReps; ++rep) {
      for (std::size_t i = 0; i < pairCount; ++i) step(i);
    }
    const double msPerRep = watch.elapsedMs() / sampleReps;
    if (sample == 0 || msPerRep < bestMsPerRep) bestMsPerRep = msPerRep;
    repsRun += sampleReps;
  }
  const auto steps =
      static_cast<double>(repsRun) * static_cast<double>(pairCount);
  LoopResult result;
  result.stepsPerSec =
      static_cast<double>(pairCount) / (bestMsPerRep / 1000.0);
  result.bytesPerStep =
      static_cast<double>(g_allocBytes.load(std::memory_order_relaxed) -
                          bytesBefore) /
      steps;
  result.allocsPerStep =
      static_cast<double>(g_allocCalls.load(std::memory_order_relaxed) -
                          callsBefore) /
      steps;
  return result;
}

struct RosterReport {
  std::string name;
  std::size_t pairs = 0;
  LoopResult reference;
  LoopResult fast;
  // The fast loop re-run with the flight recorder's metrics registry
  // installed as the thread's session sink (spans + counters recording).
  LoopResult instrumented;
  // The instrumented loop re-run with a durable state store attached: every
  // step logs the two WAL records a FORCUM verdict produces (the verdict
  // plus the site's counter transition). Compaction is disabled — its fsync
  // is a cadence cost, not a per-append one.
  LoopResult store;
  double speedup = 0.0;
  // Bare-over-instrumented time, median of paired per-round samples —
  // tools/bench.sh gates this at >= 0.9 (instrumentation may cost at most
  // 10%).
  double instrumentedRatio = 0.0;
  // Instrumented-over-store time, median of paired per-round samples —
  // tools/bench.sh gates this at >= 0.9 (WAL appends may cost at most 10%
  // of the instrumented path).
  double storeRatio = 0.0;
  double snapshotBuildUsPerDoc = 0.0;
  // End-to-end page pipeline (raw HTML → detection-ready snapshot), in
  // pages/sec: the reference parseHtml + TreeSnapshot(Node) pass vs the
  // streaming tokenizer→snapshot builder.
  LoopResult parseReference;
  LoopResult stream;
  // Parse-over-stream time, median of paired per-round samples —
  // tools/bench.sh gates this at >= MIN_STREAM_RATIO (default 3.0).
  double streamRatio = 0.0;
};

RosterReport benchRoster(const std::string& name,
                         const std::vector<server::SiteSpec>& roster) {
  RosterReport report;
  report.name = name;
  std::vector<PagePair> pairs = buildPairs(roster, 2007);
  report.pairs = pairs.size();

  const core::DecisionConfig config;
  core::DetectionScratch scratch;

  // Verify once, before timing: the two paths must agree bit for bit on
  // every pair, or the speedup below is measuring a different algorithm.
  for (const PagePair& pair : pairs) {
    const core::DecisionResult reference =
        core::decideCookieUsefulness(*pair.regular, *pair.hidden, config);
    const core::DecisionResult fast = core::decideCookieUsefulness(
        *pair.regularSnapshot, *pair.hiddenSnapshot, scratch, config);
    if (reference.treeSim != fast.treeSim ||
        reference.textSim != fast.textSim ||
        reference.causedByCookies != fast.causedByCookies) {
      std::fprintf(stderr,
                   "FATAL: fast path diverged on %s (tree %.17g vs %.17g, "
                   "text %.17g vs %.17g)\n",
                   name.c_str(), reference.treeSim, fast.treeSim,
                   reference.textSim, fast.textSim);
      std::exit(1);
    }
  }

  constexpr int kReferenceReps = 20;
  constexpr int kFastReps = 200;
  report.reference = timedLoop(kReferenceReps, pairs.size(), [&](size_t i) {
    core::decideCookieUsefulness(*pairs[i].regular, *pairs[i].hidden, config);
  });
  // One untimed pass grows the arena/scratch to working-set size; the timed
  // steady state is what FORCUM sees after its first few views.
  for (const PagePair& pair : pairs) {
    core::decideCookieUsefulness(*pair.regularSnapshot, *pair.hiddenSnapshot,
                                 scratch, config);
  }

  // The fast loop is timed three ways — bare, with the flight recorder's
  // metrics registry installed as the thread's session sink (spans +
  // counters recording), and with each step additionally logging the two
  // WAL records a FORCUM verdict produces to a live durable-store shard
  // (buffered appends, no per-record fsync; compaction disabled — its
  // fsync is a cadence cost, not a per-append one). The gate ratios
  // (instrumented/fast and store/instrumented) are each taken from a single
  // round's adjacent windows: timing the variants in independent best-of-N
  // windows lets a noisy stretch hit one side only and whipsaw the ratio
  // run to run, while paired windows see the same machine conditions.
  {
    // Prefer tmpfs for the bench shard: the gate measures the CPU cost of
    // buffered appends (fsync/compaction are cadence costs, excluded by
    // design), and a disk-backed /tmp couples the store windows to whatever
    // writeback the preceding build left behind.
    const std::filesystem::path shmDir = "/dev/shm";
    const std::filesystem::path storeDir =
        (std::filesystem::is_directory(shmDir)
             ? shmDir
             : std::filesystem::temp_directory_path()) /
        ("cp_bench_store_" + name);
    std::filesystem::remove_all(storeDir);
    store::StoreConfig storeConfig;
    storeConfig.directory = storeDir.string();
    storeConfig.compactEveryAppends = 0;
    store::StateStore stateStore(storeConfig);
    store::HostStore* shard = stateStore.openHost("bench." + name);
    shard->beginSession("bench");
    const std::string verdictBody =
        "bench." + name + "\t12\tno-difference\t0";
    const std::string counterBody =
        "bench." + name + "\t1\t12\t12\t3\t0\tk|d|p";

    const auto runFast = [&] {
      for (const PagePair& pair : pairs) {
        core::decideCookieUsefulness(*pair.regularSnapshot,
                                     *pair.hiddenSnapshot, scratch, config);
      }
    };
    const auto runStore = [&] {
      for (const PagePair& pair : pairs) {
        core::decideCookieUsefulness(*pair.regularSnapshot,
                                     *pair.hiddenSnapshot, scratch, config);
        shard->append(store::RecordType::VerdictApplied, verdictBody);
        shard->append(store::RecordType::CounterTransition, counterBody);
      }
    };

    constexpr int kRatioRounds = 8;
    constexpr int kRepsPerRound = kFastReps / kRatioRounds;
    const auto stepsPerRep = static_cast<double>(pairs.size());
    double bestFastMs = 0.0, bestInstrMs = 0.0, bestStoreMs = 0.0;
    std::vector<double> instrRatios, storeRatios;
    std::uint64_t fastBytes = 0, fastCalls = 0;
    std::uint64_t instrBytes = 0, instrCalls = 0;
    std::uint64_t storeBytes = 0, storeCalls = 0;
    for (int round = 0; round < kRatioRounds; ++round) {
      std::uint64_t bytesBefore =
          g_allocBytes.load(std::memory_order_relaxed);
      std::uint64_t callsBefore =
          g_allocCalls.load(std::memory_order_relaxed);
      const util::StopWatch fastWatch;
      for (int rep = 0; rep < kRepsPerRound; ++rep) runFast();
      const double fastMs = fastWatch.elapsedMs() / kRepsPerRound;
      fastBytes += g_allocBytes.load(std::memory_order_relaxed) - bytesBefore;
      fastCalls += g_allocCalls.load(std::memory_order_relaxed) - callsBefore;

      double instrMs = 0.0;
      double storeMs = 0.0;
      {
        obs::MetricsRegistry metrics;
        obs::ScopedObsSession obsScope(&metrics, nullptr);
        runFast();  // warm the session sink before its timed window
        bytesBefore = g_allocBytes.load(std::memory_order_relaxed);
        callsBefore = g_allocCalls.load(std::memory_order_relaxed);
        const util::StopWatch instrWatch;
        for (int rep = 0; rep < kRepsPerRound; ++rep) runFast();
        instrMs = instrWatch.elapsedMs() / kRepsPerRound;
        instrBytes +=
            g_allocBytes.load(std::memory_order_relaxed) - bytesBefore;
        instrCalls +=
            g_allocCalls.load(std::memory_order_relaxed) - callsBefore;

        bytesBefore = g_allocBytes.load(std::memory_order_relaxed);
        callsBefore = g_allocCalls.load(std::memory_order_relaxed);
        const util::StopWatch storeWatch;
        for (int rep = 0; rep < kRepsPerRound; ++rep) runStore();
        storeMs = storeWatch.elapsedMs() / kRepsPerRound;
        storeBytes +=
            g_allocBytes.load(std::memory_order_relaxed) - bytesBefore;
        storeCalls +=
            g_allocCalls.load(std::memory_order_relaxed) - callsBefore;
      }

      if (round == 0 || fastMs < bestFastMs) bestFastMs = fastMs;
      if (round == 0 || instrMs < bestInstrMs) bestInstrMs = instrMs;
      if (round == 0 || storeMs < bestStoreMs) bestStoreMs = storeMs;
      instrRatios.push_back(fastMs / instrMs);
      storeRatios.push_back(instrMs / storeMs);
    }
    std::filesystem::remove_all(storeDir);

    const double stepsTotal = kRatioRounds * kRepsPerRound * stepsPerRep;
    report.fast.stepsPerSec = stepsPerRep / (bestFastMs / 1000.0);
    report.fast.bytesPerStep = static_cast<double>(fastBytes) / stepsTotal;
    report.fast.allocsPerStep = static_cast<double>(fastCalls) / stepsTotal;
    report.instrumented.stepsPerSec = stepsPerRep / (bestInstrMs / 1000.0);
    report.instrumented.bytesPerStep =
        static_cast<double>(instrBytes) / stepsTotal;
    report.instrumented.allocsPerStep =
        static_cast<double>(instrCalls) / stepsTotal;
    report.store.stepsPerSec = stepsPerRep / (bestStoreMs / 1000.0);
    report.store.bytesPerStep = static_cast<double>(storeBytes) / stepsTotal;
    report.store.allocsPerStep = static_cast<double>(storeCalls) / stepsTotal;
    report.speedup = report.fast.stepsPerSec / report.reference.stepsPerSec;
    report.instrumentedRatio = medianOf(instrRatios);
    report.storeRatio = medianOf(storeRatios);

    // Instrumentation must stay allocation-free — obs recording never
    // touches the heap.
    if (report.instrumented.bytesPerStep != 0.0 ||
        report.instrumented.allocsPerStep != 0.0) {
      std::fprintf(stderr,
                   "FATAL: instrumented hot path allocated on %s "
                   "(%.1f bytes/step, %.2f allocs/step)\n",
                   name.c_str(), report.instrumented.bytesPerStep,
                   report.instrumented.allocsPerStep);
      std::exit(1);
    }
  }

  // Cost of building the snapshots the fast path reads — paid once per
  // parse, amortized over every detection step on that document.
  constexpr int kBuildReps = 20;
  const util::StopWatch buildWatch;
  for (int rep = 0; rep < kBuildReps; ++rep) {
    for (const PagePair& pair : pairs) {
      dom::TreeSnapshot regular(*pair.regular);
      dom::TreeSnapshot hidden(*pair.hidden);
      (void)regular;
      (void)hidden;
    }
  }
  report.snapshotBuildUsPerDoc =
      buildWatch.elapsedMs() * 1000.0 /
      (2.0 * kBuildReps * static_cast<double>(pairs.size()));

  // End-to-end page pipeline: raw container/hidden HTML in, detection-ready
  // snapshot out. Verify equivalence once before timing — the ratio is
  // meaningless if the streaming builder produces a different snapshot.
  std::vector<const std::string*> documents;
  documents.reserve(pairs.size() * 2);
  for (const PagePair& pair : pairs) {
    documents.push_back(&pair.regularHtml);
    documents.push_back(&pair.hiddenHtml);
  }
  html::StreamingSnapshotBuilder builder;
  for (const std::string* html : documents) {
    const auto parsed = html::parseHtml(*html);
    const dom::TreeSnapshot reference(*parsed);
    const html::StreamParseResult streamed = builder.build(*html);
    bool equal = reference.nodeCount() == streamed.snapshot->nodeCount();
    for (std::uint32_t i = 0; equal && i < reference.nodeCount(); ++i) {
      equal = reference.symbol(i) == streamed.snapshot->symbol(i) &&
              reference.subtreeEnd(i) == streamed.snapshot->subtreeEnd(i) &&
              reference.rawFlags(i) == streamed.snapshot->rawFlags(i) &&
              reference.textHash(i) == streamed.snapshot->textHash(i);
    }
    if (!equal) {
      std::fprintf(stderr,
                   "FATAL: streaming snapshot diverged from reference on %s\n",
                   name.c_str());
      std::exit(1);
    }
  }
  // Paired sampling again: both pipelines are timed back to back inside
  // each round and the gate ratio is the median of the per-round pairs, so
  // a noisy stretch perturbs one round's ratio, not the statistic.
  const auto runParse = [&] {
    for (const std::string* html : documents) {
      const auto parsed = html::parseHtml(*html);
      const dom::TreeSnapshot snapshot(*parsed);
      (void)snapshot;
    }
  };
  const auto runStream = [&] {
    for (const std::string* html : documents) {
      const html::StreamParseResult streamed = builder.build(*html);
      (void)streamed;
    }
  };
  constexpr int kRounds = 10;
  constexpr int kParseRepsPerRound = 3;
  constexpr int kStreamRepsPerRound = 9;
  const auto pagesPerRep = static_cast<double>(documents.size());
  double bestParseMs = 0.0;
  double bestStreamMs = 0.0;
  std::vector<double> streamRatios;
  std::uint64_t parseBytes = 0, parseCalls = 0;
  std::uint64_t streamBytes = 0, streamCalls = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::uint64_t bytesBefore = g_allocBytes.load(std::memory_order_relaxed);
    std::uint64_t callsBefore = g_allocCalls.load(std::memory_order_relaxed);
    const util::StopWatch parseWatch;
    for (int rep = 0; rep < kParseRepsPerRound; ++rep) runParse();
    const double parseMs = parseWatch.elapsedMs() / kParseRepsPerRound;
    parseBytes += g_allocBytes.load(std::memory_order_relaxed) - bytesBefore;
    parseCalls += g_allocCalls.load(std::memory_order_relaxed) - callsBefore;

    bytesBefore = g_allocBytes.load(std::memory_order_relaxed);
    callsBefore = g_allocCalls.load(std::memory_order_relaxed);
    const util::StopWatch streamWatch;
    for (int rep = 0; rep < kStreamRepsPerRound; ++rep) runStream();
    const double streamMs = streamWatch.elapsedMs() / kStreamRepsPerRound;
    streamBytes += g_allocBytes.load(std::memory_order_relaxed) - bytesBefore;
    streamCalls += g_allocCalls.load(std::memory_order_relaxed) - callsBefore;

    if (round == 0 || parseMs < bestParseMs) bestParseMs = parseMs;
    if (round == 0 || streamMs < bestStreamMs) bestStreamMs = streamMs;
    streamRatios.push_back(parseMs / streamMs);
  }
  const double parseSteps = kRounds * kParseRepsPerRound * pagesPerRep;
  const double streamSteps = kRounds * kStreamRepsPerRound * pagesPerRep;
  report.parseReference.stepsPerSec = pagesPerRep / (bestParseMs / 1000.0);
  report.parseReference.bytesPerStep =
      static_cast<double>(parseBytes) / parseSteps;
  report.parseReference.allocsPerStep =
      static_cast<double>(parseCalls) / parseSteps;
  report.stream.stepsPerSec = pagesPerRep / (bestStreamMs / 1000.0);
  report.stream.bytesPerStep = static_cast<double>(streamBytes) / streamSteps;
  report.stream.allocsPerStep = static_cast<double>(streamCalls) / streamSteps;
  report.streamRatio = medianOf(streamRatios);
  return report;
}

void appendLoopJson(std::string& out, const char* key,
                    const LoopResult& loop) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"steps_per_sec\": %.1f, "
                "\"bytes_per_step\": %.1f, \"allocs_per_step\": %.2f}",
                key, loop.stepsPerSec, loop.bytesPerStep, loop.allocsPerStep);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outputPath = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  std::printf("=== detection hot path: reference vs snapshot fast path ===\n\n");
  std::vector<RosterReport> reports;
  reports.push_back(benchRoster("table1", cookiepicker::server::table1Roster()));
  reports.push_back(benchRoster("table2", cookiepicker::server::table2Roster()));

  std::string json = "{\n  \"benchmark\": \"detection_hotpath\",\n"
                     "  \"rosters\": {\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RosterReport& report = reports[i];
    std::printf("[%s] %zu pairs\n", report.name.c_str(), report.pairs);
    std::printf("  reference : %10.1f steps/s  %10.1f bytes/step  %8.2f allocs/step\n",
                report.reference.stepsPerSec, report.reference.bytesPerStep,
                report.reference.allocsPerStep);
    std::printf("  fast      : %10.1f steps/s  %10.1f bytes/step  %8.2f allocs/step\n",
                report.fast.stepsPerSec, report.fast.bytesPerStep,
                report.fast.allocsPerStep);
    std::printf("  +metrics  : %10.1f steps/s  %10.1f bytes/step  %8.2f allocs/step\n",
                report.instrumented.stepsPerSec,
                report.instrumented.bytesPerStep,
                report.instrumented.allocsPerStep);
    std::printf("  +store    : %10.1f steps/s  %10.1f bytes/step  %8.2f allocs/step\n",
                report.store.stepsPerSec, report.store.bytesPerStep,
                report.store.allocsPerStep);
    std::printf("  parse+snap: %10.1f pages/s %10.1f bytes/page %8.2f allocs/page\n",
                report.parseReference.stepsPerSec,
                report.parseReference.bytesPerStep,
                report.parseReference.allocsPerStep);
    std::printf("  stream    : %10.1f pages/s %10.1f bytes/page %8.2f allocs/page\n",
                report.stream.stepsPerSec, report.stream.bytesPerStep,
                report.stream.allocsPerStep);
    std::printf("  speedup   : %.2fx   instrumented ratio: %.2f   "
                "store ratio: %.2f   snapshot build: %.1f us/doc   "
                "stream ratio: %.2fx\n\n",
                report.speedup, report.instrumentedRatio, report.storeRatio,
                report.snapshotBuildUsPerDoc, report.streamRatio);

    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "    \"%s\": {\n      \"pairs\": %zu,\n",
                  report.name.c_str(), report.pairs);
    json += buffer;
    appendLoopJson(json, "reference", report.reference);
    json += ",\n";
    appendLoopJson(json, "fast", report.fast);
    json += ",\n";
    appendLoopJson(json, "instrumented", report.instrumented);
    json += ",\n";
    appendLoopJson(json, "store", report.store);
    json += ",\n";
    appendLoopJson(json, "parse_reference", report.parseReference);
    json += ",\n";
    appendLoopJson(json, "stream", report.stream);
    json += ",\n";
    std::snprintf(buffer, sizeof(buffer),
                  "      \"speedup\": %.2f,\n"
                  "      \"instrumented_ratio\": %.2f,\n"
                  "      \"store_ratio\": %.2f,\n"
                  "      \"stream_ratio\": %.2f,\n"
                  "      \"snapshot_build_us_per_doc\": %.1f\n    }%s\n",
                  report.speedup, report.instrumentedRatio, report.storeRatio,
                  report.streamRatio, report.snapshotBuildUsPerDoc,
                  i + 1 < reports.size() ? "," : "");
    json += buffer;
  }
  json += "  }\n}\n";

  if (std::FILE* file = std::fopen(outputPath.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("wrote %s\n", outputPath.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", outputPath.c_str());
    return 1;
  }
  return 0;
}
