# Empty compiler generated dependencies file for cp_baseline.
# This may be replaced when dependencies are built.
