# Empty compiler generated dependencies file for evasion_arms_race.
# This may be replaced when dependencies are built.
