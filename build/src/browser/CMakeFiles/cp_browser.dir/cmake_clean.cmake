file(REMOVE_RECURSE
  "CMakeFiles/cp_browser.dir/browser.cpp.o"
  "CMakeFiles/cp_browser.dir/browser.cpp.o.d"
  "CMakeFiles/cp_browser.dir/session_model.cpp.o"
  "CMakeFiles/cp_browser.dir/session_model.cpp.o.d"
  "libcp_browser.a"
  "libcp_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
