// Doppelganger-style baseline (Shankar & Karlof, CCS'06), as characterized
// in the paper's Sections 3.1 and 6.
//
// Doppelganger mirrors the user's session in a fork window: every page view
// is executed twice — container page *and all embedded objects* — once with
// and once without the candidate cookies; any detected difference is shown
// to the user, who must compare the two windows and decide. Against this,
// CookiePicker claims (a) far lower overhead (one extra container request
// vs. a fully mirrored session) and (b) no human involvement. This module
// exists to measure exactly those two comparisons.
#pragma once

#include <functional>
#include <string>

#include "browser/browser.h"
#include "net/network.h"

namespace cookiepicker::baseline {

// The human in the loop: shown both page versions, answers whether the
// cookies matter. Experiments plug in the ground-truth oracle; the point of
// counting calls is that *each call is a user interruption*.
using UserOracle =
    std::function<bool(const std::string& mainHtml,
                       const std::string& forkHtml)>;

struct DoppelgangerStats {
  std::uint64_t pageViews = 0;
  std::uint64_t mirroredRequests = 0;   // extra requests for the fork window
  std::uint64_t mirroredBytes = 0;      // extra bytes for the fork window
  std::uint64_t userPrompts = 0;        // times the oracle was consulted
  std::uint64_t cookiesKeptUseful = 0;
  double mirrorLatencyMs = 0.0;         // total fork-window wall time
};

class Doppelganger {
 public:
  Doppelganger(browser::Browser& browser, net::Network& network,
               UserOracle oracle);

  // Mirrors one page view: refetches the container *and* its objects with
  // persistent cookies stripped, diffs the serialized pages, and consults
  // the user on any difference. Marks cookies useful on a "yes".
  void onPageView(const browser::PageView& view);

  const DoppelgangerStats& stats() const { return stats_; }

 private:
  browser::Browser& browser_;
  net::Network& network_;
  UserOracle oracle_;
  DoppelgangerStats stats_;
};

}  // namespace cookiepicker::baseline
