#!/usr/bin/env bash
# Release-mode performance benches.
#
# Builds an optimized tree (build-bench), runs the detection hot-path bench
# (which rewrites BENCH_hotpath.json at the repo root — commit it when the
# numbers move) and the fleet scaling bench, and gates on (a) the hot path
# achieving at least MIN_SPEEDUP (default 3) over the reference
# implementation on the Table 1 roster, (b) the flight-recorder
# instrumentation costing at most 10% of fast-path throughput
# (instrumented_ratio >= MIN_INSTRUMENTED_RATIO, default 0.9), (c) the
# durable-store WAL appends costing at most 10% of instrumented throughput
# (store_ratio >= MIN_STORE_RATIO, default 0.9 — the two buffered appends
# cost a fixed ~0.5-0.8us against a ~10us step, so the ratio floats with
# machine speed and 0.95 had near-zero margin), and (d) the streaming
# tokenizer→snapshot pipeline processing pages at least MIN_STREAM_RATIO
# (default 3) times faster than the reference parseHtml + TreeSnapshot pass.
# All three ratios are medians of paired adjacent timing rounds inside the
# bench, so ambient machine noise perturbs single rounds, not the gate.
#
#   tools/bench.sh            # hot path + fleet scaling
#   MIN_SPEEDUP=5 tools/bench.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
MIN_SPEEDUP="${MIN_SPEEDUP:-3}"
MIN_INSTRUMENTED_RATIO="${MIN_INSTRUMENTED_RATIO:-0.9}"
MIN_STORE_RATIO="${MIN_STORE_RATIO:-0.9}"
MIN_STREAM_RATIO="${MIN_STREAM_RATIO:-3.0}"
BUILD_DIR="$ROOT/build-bench"

echo "=== configuring $BUILD_DIR (Release) ==="
cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "=== building benches ==="
cmake --build "$BUILD_DIR" -j "$JOBS" \
      --target bench_detection_hotpath bench_fleet_scaling

echo "=== detection hot path ==="
"$BUILD_DIR/bench/bench_detection_hotpath" "$ROOT/BENCH_hotpath.json"

echo "=== speedup gate (>= ${MIN_SPEEDUP}x on table1) ==="
speedup="$(sed -n 's/.*"speedup": \([0-9.]*\),.*/\1/p' \
           "$ROOT/BENCH_hotpath.json" | head -1)"
if [[ -z "$speedup" ]]; then
  echo "FAIL: could not read speedup from BENCH_hotpath.json" >&2
  exit 1
fi
if ! awk -v s="$speedup" -v min="$MIN_SPEEDUP" 'BEGIN { exit !(s >= min) }'; then
  echo "FAIL: table1 speedup ${speedup}x below required ${MIN_SPEEDUP}x" >&2
  exit 1
fi
echo "OK: table1 speedup ${speedup}x"

echo "=== instrumentation overhead gate (ratio >= ${MIN_INSTRUMENTED_RATIO} on table1) ==="
ratio="$(sed -n 's/.*"instrumented_ratio": \([0-9.]*\),.*/\1/p' \
         "$ROOT/BENCH_hotpath.json" | head -1)"
if [[ -z "$ratio" ]]; then
  echo "FAIL: could not read instrumented_ratio from BENCH_hotpath.json" >&2
  exit 1
fi
if ! awk -v r="$ratio" -v min="$MIN_INSTRUMENTED_RATIO" \
     'BEGIN { exit !(r >= min) }'; then
  echo "FAIL: table1 instrumented ratio ${ratio} below required ${MIN_INSTRUMENTED_RATIO}" >&2
  exit 1
fi
echo "OK: table1 instrumented ratio ${ratio}"

echo "=== store overhead gate (ratio >= ${MIN_STORE_RATIO} on table1) ==="
store_ratio="$(sed -n 's/.*"store_ratio": \([0-9.]*\),.*/\1/p' \
               "$ROOT/BENCH_hotpath.json" | head -1)"
if [[ -z "$store_ratio" ]]; then
  echo "FAIL: could not read store_ratio from BENCH_hotpath.json" >&2
  exit 1
fi
if ! awk -v r="$store_ratio" -v min="$MIN_STORE_RATIO" \
     'BEGIN { exit !(r >= min) }'; then
  echo "FAIL: table1 store ratio ${store_ratio} below required ${MIN_STORE_RATIO}" >&2
  exit 1
fi
echo "OK: table1 store ratio ${store_ratio}"

echo "=== streaming pipeline gate (ratio >= ${MIN_STREAM_RATIO}x on both rosters) ==="
stream_ratios="$(sed -n 's/.*"stream_ratio": \([0-9.]*\),.*/\1/p' \
                 "$ROOT/BENCH_hotpath.json")"
if [[ -z "$stream_ratios" ]]; then
  echo "FAIL: could not read stream_ratio from BENCH_hotpath.json" >&2
  exit 1
fi
for stream_ratio in $stream_ratios; do
  if ! awk -v r="$stream_ratio" -v min="$MIN_STREAM_RATIO" \
       'BEGIN { exit !(r >= min) }'; then
    echo "FAIL: stream ratio ${stream_ratio}x below required ${MIN_STREAM_RATIO}x" >&2
    exit 1
  fi
done
echo "OK: stream ratios ${stream_ratios//$'\n'/ }x"

echo "=== fleet scaling ==="
"$BUILD_DIR/bench/bench_fleet_scaling"

echo "all benches done; BENCH_hotpath.json updated"
