#include <gtest/gtest.h>

#include "net/cookie_parse.h"
#include "util/stats.h"
#include "server/generator.h"
#include "test_support.h"

namespace cookiepicker::browser {
namespace {

using testsupport::SimWorld;

TEST(Browser, VisitBuildsStreamingSnapshot) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  const PageView view = world.browser.visit(world.urlFor(spec));
  EXPECT_EQ(view.status, 200);
  // Streaming mode (the default): snapshot only, no node tree.
  EXPECT_EQ(view.document, nullptr);
  ASSERT_NE(view.snapshot, nullptr);
  EXPECT_GT(view.snapshot->nodeCount(), 0u);
  EXPECT_GT(view.snapshot->comparisonRootIndex(), 0u);  // found <body>
  EXPECT_EQ(view.url.host(), "shop.example");
}

TEST(Browser, ReferenceModeParsesContainerIntoDom) {
  SimWorld world;
  world.browser.setDomMode(DomMode::Reference);
  const auto spec = world.addGenericSite("shop.example");
  const PageView view = world.browser.visit(world.urlFor(spec));
  EXPECT_EQ(view.status, 200);
  ASSERT_NE(view.document, nullptr);
  EXPECT_NE(view.document->findFirst("body"), nullptr);
  EXPECT_EQ(view.url.host(), "shop.example");
}

TEST(Browser, StreamingAndReferenceModesAgree) {
  SimWorld streaming;
  SimWorld reference;
  reference.browser.setDomMode(DomMode::Reference);
  const auto specA = streaming.addGenericSite("shop.example");
  const auto specB = reference.addGenericSite("shop.example");
  const PageView a = streaming.browser.visit(streaming.urlFor(specA));
  const PageView b = reference.browser.visit(reference.urlFor(specB));
  ASSERT_NE(a.snapshot, nullptr);
  ASSERT_NE(b.snapshot, nullptr);
  // Identical snapshot arrays and identical resolved subresource lists.
  ASSERT_EQ(a.snapshot->nodeCount(), b.snapshot->nodeCount());
  for (std::uint32_t i = 0; i < a.snapshot->nodeCount(); ++i) {
    EXPECT_EQ(a.snapshot->symbol(i), b.snapshot->symbol(i));
    EXPECT_EQ(a.snapshot->subtreeEnd(i), b.snapshot->subtreeEnd(i));
    EXPECT_EQ(a.snapshot->level(i), b.snapshot->level(i));
    EXPECT_EQ(a.snapshot->rawFlags(i), b.snapshot->rawFlags(i));
    EXPECT_EQ(a.snapshot->textHash(i), b.snapshot->textHash(i));
  }
  ASSERT_EQ(a.subresources.size(), b.subresources.size());
  for (std::size_t i = 0; i < a.subresources.size(); ++i) {
    EXPECT_EQ(a.subresources[i].toString(), b.subresources[i].toString());
  }
}

TEST(Browser, VisitFetchesSubresources) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  const PageView view = world.browser.visit(world.urlFor(spec));
  // Skeleton embeds a stylesheet, a script, and banner images.
  EXPECT_GE(view.timing.subresourceCount, 3);
  EXPECT_GT(world.browser.objectRequestCount(), 0u);
}

TEST(Browser, VisitAdvancesSimClock) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  const util::SimTimeMs before = world.clock.nowMs();
  const PageView view = world.browser.visit(world.urlFor(spec));
  EXPECT_GT(world.clock.nowMs(), before);
  EXPECT_GT(view.timing.totalLoadMs, 0.0);
}

TEST(Browser, StoresFirstPartyCookies) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  world.browser.visit(world.urlFor(spec));
  // Generic site: 1 preference + 2 trackers, all first-party persistent.
  EXPECT_EQ(
      world.browser.jar().persistentCookiesForHost(spec.domain).size(), 3u);
}

TEST(Browser, SendsStoredCookiesBack) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  world.browser.visit(world.urlFor(spec));
  const PageView second = world.browser.visit(world.urlFor(spec));
  const std::string cookieHeader =
      second.containerRequest.headers.get("Cookie").value_or("");
  EXPECT_NE(cookieHeader.find("prefstyle="), std::string::npos);
  EXPECT_NE(cookieHeader.find("trk0="), std::string::npos);
}

TEST(Browser, FollowsRedirectsToRealContainer) {
  SimWorld world;
  auto spec = server::makeGenericSpec("R", "redir.example", 5);
  spec.redirectEntry = true;
  world.addSite(spec);
  const PageView view = world.browser.visit("http://redir.example/");
  EXPECT_EQ(view.status, 200);
  EXPECT_EQ(view.url.path(), "/home");  // step one found the real page
  EXPECT_EQ(view.timing.redirectCount, 1);
  EXPECT_EQ(view.containerRequest.url.path(), "/home");
}

TEST(Browser, UnknownHostYields404View) {
  SimWorld world;
  const PageView view = world.browser.visit("http://nowhere.example/");
  EXPECT_EQ(view.status, 404);
}

TEST(Browser, UnparseableUrlYieldsEmptyView) {
  SimWorld world;
  const PageView view = world.browser.visit("not a url");
  EXPECT_EQ(view.status, 0);
  ASSERT_NE(view.snapshot, nullptr);  // empty-document skeleton, flattened
}

TEST(Browser, ThirdPartyCookiesBlockedByDefaultPolicy) {
  SimWorld world;
  // A site whose pages embed an image from another registrable domain.
  world.addGenericSite("main.example");
  world.addGenericSite("tracker.other");
  // Craft a page view against tracker.other as a third-party subresource:
  // directly exercise storeResponseCookies through a full visit where the
  // document is main.example but a subresource is tracker.other. The
  // generic site doesn't embed cross-domain images, so test the policy
  // check directly instead.
  EXPECT_FALSE(world.browser.policy().acceptThirdParty);
  EXPECT_TRUE(world.browser.policy().shouldAccept(true, true));
  EXPECT_FALSE(world.browser.policy().shouldAccept(false, true));
}

TEST(Browser, HiddenFetchStripsSelectedPersistentCookies) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  world.browser.visit(world.urlFor(spec));
  const PageView view = world.browser.visit(world.urlFor(spec));

  // Strip everything persistent and check the stripped list.
  const HiddenFetchResult hidden = world.browser.hiddenFetch(
      view,
      [](const cookies::CookieRecord& record) { return record.persistent; });
  EXPECT_EQ(hidden.status, 200);
  ASSERT_NE(hidden.snapshot, nullptr);
  EXPECT_EQ(hidden.strippedCookies.size(), 3u);
}

TEST(Browser, HiddenFetchKeepsSessionCookies) {
  SimWorld world;
  // Reference mode: this test reads text out of the hidden node tree.
  world.browser.setDomMode(DomMode::Reference);
  auto spec = server::makeGenericSpec("C", "cart.example", 6);
  spec.sessionCart = true;
  world.addSite(spec);
  world.browser.visit("http://cart.example/");
  const PageView view = world.browser.visit("http://cart.example/");
  const HiddenFetchResult hidden = world.browser.hiddenFetch(
      view,
      [](const cookies::CookieRecord& record) { return record.persistent; });
  // The rendered hidden page still shows the session cart.
  EXPECT_NE(hidden.document->textContent().find("Cart items"),
            std::string::npos);
  for (const auto& key : hidden.strippedCookies) {
    EXPECT_NE(key.name, "cart");
  }
}

TEST(Browser, HiddenFetchDoesNotFetchObjectsOrStoreCookies) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  const PageView view = world.browser.visit(world.urlFor(spec));
  world.browser.jar().clear();  // forget everything the visit stored

  world.network.resetCounters();
  const std::uint64_t objectsBefore = world.browser.objectRequestCount();
  world.browser.hiddenFetch(view, [](const cookies::CookieRecord&) {
    return true;
  });
  // Exactly one network request (the container), no object loads.
  EXPECT_EQ(world.network.totalRequests(), 1u);
  EXPECT_EQ(world.browser.objectRequestCount(), objectsBefore);
  // Set-Cookie headers on the hidden response were ignored.
  EXPECT_EQ(world.browser.jar().size(), 0u);
}

TEST(Browser, PersistentSendFilterSuppressesCookies) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  world.browser.visit(world.urlFor(spec));
  world.browser.setPersistentSendFilter(
      [](const cookies::CookieRecord& record) {
        return record.key.name.starts_with("trk");
      });
  const PageView view = world.browser.visit(world.urlFor(spec));
  const std::string cookieHeader =
      view.containerRequest.headers.get("Cookie").value_or("");
  EXPECT_EQ(cookieHeader.find("trk"), std::string::npos);
  EXPECT_NE(cookieHeader.find("prefstyle="), std::string::npos);
  world.browser.clearPersistentSendFilter();
  const PageView after = world.browser.visit(world.urlFor(spec));
  EXPECT_NE(after.containerRequest.headers.get("Cookie").value_or("").find(
                "trk0="),
            std::string::npos);
}

TEST(ThinkTime, SamplesAboveFloorAndHeavyTailed) {
  ThinkTimeModel model(/*medianSeconds=*/12.0, /*sigma=*/0.9,
                       /*floorSeconds=*/1.0);
  util::Pcg32 rng(77);
  util::RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    const double ms = model.sampleMs(rng);
    EXPECT_GE(ms, 1000.0);
    stats.add(ms);
  }
  // Log-normal with median 12 s: mean exceeds 10 s (Mah's model).
  EXPECT_GT(stats.mean(), 10'000.0);
  EXPECT_LT(stats.mean(), 40'000.0);
}

TEST(Browser, ThinkAdvancesClock) {
  SimWorld world;
  const util::SimTimeMs before = world.clock.nowMs();
  const double thinkMs = world.browser.think();
  EXPECT_GE(thinkMs, 1000.0);
  EXPECT_EQ(world.clock.nowMs(), before + static_cast<util::SimTimeMs>(
                                              thinkMs));
}

TEST(Browser, BlockAllPolicyStoresNothing) {
  SimWorld world;
  const auto spec = world.addGenericSite("shop.example");
  world.browser.setPolicy(cookies::CookiePolicy::blockAll());
  world.browser.visit(world.urlFor(spec));
  EXPECT_EQ(world.browser.jar().size(), 0u);
}

}  // namespace
}  // namespace cookiepicker::browser
