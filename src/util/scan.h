// Branch-light byte scanning primitives for the HTML tokenizer's inner
// loops.
//
// The tokenizer spends almost all of its time finding the *next interesting
// byte*: the '<' that ends a text run, the quote that ends an attribute
// value, the '&' that starts a character reference, the whitespace/'>'/'/'
// that ends a tag or attribute name. Two tools cover those loops:
//
//  * findByte — a thin memchr wrapper (libc memchr is already SIMD on every
//    platform we build on) for the single-needle scans;
//  * SwarScanner — a SWAR (SIMD-within-a-register) multi-needle scan that
//    tests eight bytes per 64-bit word with the classic
//    haszero(word ^ broadcast(needle)) trick, for the stop sets a single
//    memchr cannot express ({whitespace, '>', '/', '='} and friends).
//
// All scanners return the index of the first matching byte at or after
// `from`, or text.size() when no byte matches — the form every tokenizer
// loop wants ("advance to the boundary, then look at it").
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace cookiepicker::util {

// First occurrence of `needle` at or after `from`; text.size() if absent.
inline std::size_t findByte(std::string_view text, std::size_t from,
                            char needle) {
  if (from >= text.size()) return text.size();
  const void* hit = std::memchr(text.data() + from, needle,
                                text.size() - from);
  if (hit == nullptr) return text.size();
  return static_cast<std::size_t>(static_cast<const char*>(hit) -
                                  text.data());
}

namespace swar {

inline constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
inline constexpr std::uint64_t kHighBits = 0x8080808080808080ULL;

// High bit of each byte lane set iff that lane is zero.
inline constexpr std::uint64_t hasZeroByte(std::uint64_t word) {
  return (word - kOnes) & ~word & kHighBits;
}

inline constexpr std::uint64_t broadcast(char needle) {
  return kOnes * static_cast<unsigned char>(needle);
}

// High bit of each lane set iff that lane equals `needle`.
inline constexpr std::uint64_t matchByte(std::uint64_t word, char needle) {
  return hasZeroByte(word ^ broadcast(needle));
}

inline std::uint64_t loadWord(const char* data) {
  std::uint64_t word;
  std::memcpy(&word, data, sizeof(word));  // alignment-safe, endian-agnostic
  return word;
}

// Index (0-7) of the lowest lane whose high bit is set in a nonzero mask.
// Little-endian byte order: the lowest-addressed byte is the lowest lane,
// which is what every build target of this project uses.
inline int firstMarkedLane(std::uint64_t mask) {
  return __builtin_ctzll(mask) >> 3;
}

}  // namespace swar

// Multi-needle SWAR scanner over a fixed stop set of up to four bytes plus
// an optional "HTML whitespace" class ({' ', '\t', '\r', '\n', '\f'} —
// deliberately *excluding* '\v', which the tokenizer treats as an ordinary
// character). Whitespace is matched as a candidate range 0x09..0x0D plus
// 0x20 and verified exactly, so a stray '\v' costs one scalar re-check but
// never a wrong answer.
template <bool MatchWhitespace, char N1, char N2 = N1, char N3 = N1>
struct SwarScanner {
  static constexpr bool isStop(char ch) {
    if (MatchWhitespace && (ch == ' ' || ch == '\t' || ch == '\r' ||
                            ch == '\n' || ch == '\f')) {
      return true;
    }
    return ch == N1 || ch == N2 || ch == N3;
  }

  // First index >= from with isStop(text[i]); text.size() if none.
  static std::size_t find(std::string_view text, std::size_t from) {
    const char* data = text.data();
    std::size_t i = from;
    const std::size_t n = text.size();
    while (i + 8 <= n) {
      const std::uint64_t word = swar::loadWord(data + i);
      std::uint64_t candidates = swar::matchByte(word, N1);
      if constexpr (N2 != N1) candidates |= swar::matchByte(word, N2);
      if constexpr (N3 != N1 && N3 != N2) {
        candidates |= swar::matchByte(word, N3);
      }
      if constexpr (MatchWhitespace) {
        candidates |= swar::matchByte(word, ' ');
        // Range candidate 0x09..0x0D: subtracting 0x09 from each lane maps
        // the range onto 0x00..0x04; lanes < 5 are then exactly the lanes
        // whose (borrow-free) difference has a zero high nibble and value
        // below 5. Cheapest correct form: three equality tests would cost
        // the same as this subtract trick for a 5-wide range, but the range
        // includes '\v' (0x0B) as a false positive either way, so candidates
        // are verified scalar below.
        const std::uint64_t shifted = word ^ swar::broadcast('\t');
        // After XOR with 0x09: '\t'→0, '\n'→3, '\v'→2, '\f'→5, '\r'→4.
        // All five land in 0..5; test "< 8" via zero high-pentad:
        const std::uint64_t inLowRange =
            swar::hasZeroByte(shifted & ~swar::kOnes * 0x07ULL);
        candidates |= inLowRange;
      }
      while (candidates != 0) {
        const int lane = swar::firstMarkedLane(candidates);
        const char ch = data[i + static_cast<std::size_t>(lane)];
        if (isStop(ch)) return i + static_cast<std::size_t>(lane);
        candidates &= candidates - 1;  // false positive (e.g. '\v'): next
      }
      i += 8;
    }
    for (; i < n; ++i) {
      if (isStop(data[i])) return i;
    }
    return n;
  }
};

// The tokenizer's three multi-needle boundaries.
//  Tag name:        whitespace | '>' | '/'
//  Attribute name:  whitespace | '=' | '>' | '/'
//  Unquoted value:  whitespace | '>'
using TagNameScanner = SwarScanner<true, '>', '/'>;
using AttrNameScanner = SwarScanner<true, '=', '>', '/'>;
using UnquotedValueScanner = SwarScanner<true, '>'>;

// The text-collapse whitespace class is the tokenizer class *plus* '\v'
// (isspace semantics, not HTML inter-element semantics). Adding '\v' as the
// explicit needle makes SwarScanner's verify step accept it, so this finds
// the first byte of {' ', '\t', '\r', '\n', '\f', '\v'}.
using AsciiSpaceScanner = SwarScanner<true, '\v'>;

// First index >= from whose byte is NOT collapse-class whitespace;
// text.size() if the rest is all whitespace. The per-lane mask is built
// from exact equality tests (no range trick), because a false positive
// here would silently skip a content byte instead of costing a re-check.
inline std::size_t skipAsciiSpace(std::string_view text, std::size_t from) {
  const char* data = text.data();
  std::size_t i = from;
  const std::size_t n = text.size();
  while (i + 8 <= n) {
    const std::uint64_t word = swar::loadWord(data + i);
    const std::uint64_t space = swar::matchByte(word, ' ') |
                                swar::matchByte(word, '\t') |
                                swar::matchByte(word, '\n') |
                                swar::matchByte(word, '\r') |
                                swar::matchByte(word, '\f') |
                                swar::matchByte(word, '\v');
    const std::uint64_t nonSpace = ~space & swar::kHighBits;
    if (nonSpace != 0) {
      return i + static_cast<std::size_t>(swar::firstMarkedLane(nonSpace));
    }
    i += 8;
  }
  for (; i < n; ++i) {
    const char ch = data[i];
    if (!AsciiSpaceScanner::isStop(ch)) return i;
  }
  return n;
}

}  // namespace cookiepicker::util
