file(REMOVE_RECURSE
  "CMakeFiles/cp_server.dir/behaviors.cpp.o"
  "CMakeFiles/cp_server.dir/behaviors.cpp.o.d"
  "CMakeFiles/cp_server.dir/evasion.cpp.o"
  "CMakeFiles/cp_server.dir/evasion.cpp.o.d"
  "CMakeFiles/cp_server.dir/fragments.cpp.o"
  "CMakeFiles/cp_server.dir/fragments.cpp.o.d"
  "CMakeFiles/cp_server.dir/generator.cpp.o"
  "CMakeFiles/cp_server.dir/generator.cpp.o.d"
  "CMakeFiles/cp_server.dir/p3p.cpp.o"
  "CMakeFiles/cp_server.dir/p3p.cpp.o.d"
  "CMakeFiles/cp_server.dir/site.cpp.o"
  "CMakeFiles/cp_server.dir/site.cpp.o.d"
  "CMakeFiles/cp_server.dir/words.cpp.o"
  "CMakeFiles/cp_server.dir/words.cpp.o.d"
  "libcp_server.a"
  "libcp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
