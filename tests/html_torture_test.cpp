// Adversarial inputs for the HTML pipeline. The paper's step three only
// works if malformed pages are normalized identically on the regular and
// hidden paths, which makes the parser's *totality* and *determinism* the
// properties that matter more than spec-exact trees.
#include <gtest/gtest.h>

#include <string>

#include "dom/serialize.h"
#include "html/entities.h"
#include "html/parser.h"
#include "html/tokenizer.h"

namespace cookiepicker::html {
namespace {

using dom::structureSignature;
using dom::toDebugString;

std::string parseSignature(const std::string& input) {
  return structureSignature(*parseHtml(input));
}

// --- tag soup --------------------------------------------------------------

TEST(Torture, UnclosedEverything) {
  EXPECT_EQ(parseSignature("<div><span><b><i>deep"),
            "html(head,body(div(span(b(i)))))");
}

TEST(Torture, OnlyEndTags) {
  EXPECT_EQ(parseSignature("</div></p></body></html></table>"),
            "html(head,body)");
}

TEST(Torture, InterleavedTags) {
  // <b><i></b></i> — the classic misnesting; our parser closes i with b.
  EXPECT_EQ(parseSignature("<p><b><i>x</b>y</i></p>"),
            "html(head,body(p(b(i))))");
}

TEST(Torture, TagInsideAttributeValue) {
  const auto signature =
      parseSignature("<div title=\"<p>not a tag</p>\">x</div>");
  EXPECT_EQ(signature, "html(head,body(div))");
}

TEST(Torture, UnterminatedAttributeQuote) {
  // The quote swallows the rest of the input; parser must not hang or
  // crash, and must produce something deterministic.
  const std::string input = "<div class=\"oops><p>text</p>";
  EXPECT_EQ(toDebugString(*parseHtml(input)),
            toDebugString(*parseHtml(input)));
}

TEST(Torture, NullLikeAndControlCharacters) {
  std::string input = "<p>a";
  input.push_back('\x01');
  input += "b</p>";
  const auto document = parseHtml(input);
  EXPECT_NE(document->findFirst("p"), nullptr);
}

TEST(Torture, AbsurdNestingDepth) {
  std::string input;
  for (int i = 0; i < 200; ++i) input += "<div>";
  input += "bottom";
  const auto document = parseHtml(input);
  EXPECT_EQ(document->findAll("div").size(), 200u);
  // textContent at the bottom of the pit.
  EXPECT_NE(document->textContent().find("bottom"), std::string::npos);
}

TEST(Torture, ManySiblings) {
  std::string input = "<ul>";
  for (int i = 0; i < 500; ++i) input += "<li>x";
  input += "</ul>";
  const auto document = parseHtml(input);
  EXPECT_EQ(document->findAll("li").size(), 500u);
  const dom::Node* list = document->findFirst("ul");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->childCount(), 500u);  // all li are siblings, not nested
}

TEST(Torture, TableSoup) {
  // Rows and cells with no table context rules beyond auto-closing.
  EXPECT_EQ(parseSignature("<table><td>a<tr><td>b<td>c</table>"),
            "html(head,body(table(td,tr(td,td))))");
}

TEST(Torture, HeadAfterBodyContentIgnoredStructurally) {
  const auto signature = parseSignature("<p>x</p><head><title>t</title>");
  // The late <head> tag cannot rewind; title lands in body (lenient), but
  // structure stays deterministic.
  EXPECT_EQ(parseSignature("<p>x</p><head><title>t</title>"), signature);
}

TEST(Torture, SelfClosingNonVoidElement) {
  // "<div/>" — HTML treats the slash as noise... our tokenizer honours the
  // self-closing flag, so the div takes no children. Either behaviour is
  // fine as long as it is stable; pin it.
  EXPECT_EQ(parseSignature("<div/><p>x</p>"), "html(head,body(div,p))");
}

TEST(Torture, CommentContainingTags) {
  const auto document = parseHtml("<!-- <p>ghost</p> --><div>real</div>");
  EXPECT_EQ(document->findAll("p").size(), 0u);
  EXPECT_EQ(document->findAll("div").size(), 1u);
}

TEST(Torture, ConditionalCommentStyleInput) {
  const auto document =
      parseHtml("<!--[if IE]><p>ie only</p><![endif]--><div>x</div>");
  EXPECT_EQ(document->findAll("p").size(), 0u);
}

TEST(Torture, ScriptContainingFakeEndTags) {
  const auto document = parseHtml(
      "<script>var s = \"</div></body>\"; if (1 </scr + ipt>2) {}</script>"
      "<p>after</p>");
  // The first "</scr" does not terminate the script (only "</script" does);
  // ensure the paragraph still exists and nothing crashed.
  EXPECT_EQ(document->findAll("p").size(), 1u);
}

TEST(Torture, StyleWithBracesAndSelectors) {
  const auto document = parseHtml(
      "<style>div > p::before { content: \"<li>\"; }</style><div><p>x</p>"
      "</div>");
  EXPECT_EQ(document->findAll("li").size(), 0u);
  const dom::Node* style = document->findFirst("style");
  ASSERT_NE(style, nullptr);
  EXPECT_NE(style->textContent().find("content"), std::string::npos);
}

TEST(Torture, EntitiesEverywhere) {
  const auto document = parseHtml(
      "<p title=\"&lt;&amp;&gt;\">&amp;&#65;&bogus;&\n</p>");
  const dom::Node* paragraph = document->findFirst("p");
  ASSERT_NE(paragraph, nullptr);
  EXPECT_EQ(paragraph->attribute("title").value_or(""), "<&>");
  EXPECT_NE(paragraph->textContent().find("&A&bogus;"), std::string::npos);
}

TEST(Torture, VeryLongAttributeValue) {
  const std::string longValue(100'000, 'x');
  const auto document =
      parseHtml("<div data-blob=\"" + longValue + "\">y</div>");
  const dom::Node* div = document->findFirst("div");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->attribute("data-blob").value_or("").size(), 100'000u);
}

TEST(Torture, EmptyTagName) {
  // "< >" and "<>" are text, "</>" is a stray end tag.
  const auto document = parseHtml("a <> b </> c < > d");
  EXPECT_NE(document->textContent().find("a <> b"), std::string::npos);
}

// Determinism sweep over deliberately broken fragments.
class BrokenFragment : public ::testing::TestWithParam<const char*> {};

TEST_P(BrokenFragment, ParsesDeterministicallyAndSerializesStably) {
  const std::string input = GetParam();
  const auto first = parseHtml(input);
  const auto second = parseHtml(input);
  EXPECT_EQ(toDebugString(*first), toDebugString(*second));
  // serialize → reparse → serialize is a fixpoint.
  const std::string once = dom::toHtml(*first);
  const std::string twice = dom::toHtml(*parseHtml(once));
  EXPECT_EQ(once, twice) << input;
}

INSTANTIATE_TEST_SUITE_P(
    Fragments, BrokenFragment,
    ::testing::Values(
        "<div", "</", "<!", "<!-", "<!--", "<p class=", "<p class='",
        "<a href=\"x", "text<", "<<<<", "<p><p><p>", "</p></p>",
        "<table><table><table>", "<select><option><select>",
        "<script>", "<style>unclosed", "<title>t", "<textarea><p>x",
        "<li><li></ul><li>", "<b><p></b></p>", "&#;", "&#x;", "a&b;c",
        "<img src=x<p>", "<div =\"x\">", "<div ==>", "<DIV CLASS=UPPER>"));

}  // namespace
}  // namespace cookiepicker::html
