#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cookiepicker::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::Error};
// Serializes the sink: a line is one fprintf, but concurrent fprintf calls
// to the same stream may interleave on some libcs; the mutex removes the
// ambiguity and keeps ordering sane for multi-line bursts.
std::mutex g_sinkMutex;
thread_local int t_workerIndex = -1;
}  // namespace

LogLevel Logger::threshold() {
  return g_threshold.load(std::memory_order_relaxed);
}

void Logger::setThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void Logger::setThreadWorkerIndex(int workerIndex) {
  t_workerIndex = workerIndex < 0 ? -1 : workerIndex;
}

int Logger::threadWorkerIndex() { return t_workerIndex; }

const char* Logger::levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      static_cast<int>(g_threshold.load(std::memory_order_relaxed))) {
    return;
  }
  std::lock_guard lock(g_sinkMutex);
  if (t_workerIndex >= 0) {
    std::fprintf(stderr, "[%s] [w%d] %s\n", levelName(level), t_workerIndex,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
  }
}

}  // namespace cookiepicker::util
