file(REMOVE_RECURSE
  "CMakeFiles/shopping_site.dir/shopping_site.cpp.o"
  "CMakeFiles/shopping_site.dir/shopping_site.cpp.o.d"
  "shopping_site"
  "shopping_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shopping_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
