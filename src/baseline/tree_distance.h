// Comparator tree-distance algorithms from the paper's Section 4.1.1.
//
// RSTM is one point in a design space of constrained tree edit distances;
// these are the alternatives the paper cites, implemented for the accuracy
// and cost comparisons in the ablation benchmarks:
//   * Selkow's top-down edit distance [15] — the measure STM approximates,
//     with unit insert/delete/relabel costs on whole subtrees;
//   * Zhang–Shasha's general tree edit distance (the unconstrained problem,
//     "high time complexity");
//   * a Valiente-style bottom-up distance [20] — O(|T|+|T'|), but "falls
//     short of being an accurate metric" for HTML trees whose differences
//     concentrate in leaves.
#pragma once

#include <cstddef>

#include "dom/node.h"

namespace cookiepicker::baseline {

// Selkow tree-to-tree edit distance: roots must be compared; children edits
// are insertions/deletions of whole subtrees (cost = subtree size) or
// recursive edits. Returns the edit cost.
std::size_t selkowEditDistance(const dom::Node& a, const dom::Node& b);

// Zhang–Shasha general tree edit distance with unit costs.
// O(n^2 · m^2) worst case — usable on small/medium trees only, which is the
// point of benchmarking it.
std::size_t zhangShashaEditDistance(const dom::Node& a, const dom::Node& b);

// Bottom-up matching: two nodes match iff their entire subtrees are
// identical (computed via canonical subtree fingerprints in linear time).
// Returns the number of nodes covered by matched subtrees.
std::size_t bottomUpMatching(const dom::Node& a, const dom::Node& b);

// Jaccard-normalized similarities for each measure, 1.0 = identical.
double selkowSimilarity(const dom::Node& a, const dom::Node& b);
double zhangShashaSimilarity(const dom::Node& a, const dom::Node& b);
double bottomUpSimilarity(const dom::Node& a, const dom::Node& b);

}  // namespace cookiepicker::baseline
