#include "server/fragments.h"

#include "server/words.h"

namespace cookiepicker::server {

using dom::Node;

std::unique_ptr<Node> makeTextElement(const std::string& tag,
                                      const std::string& text) {
  auto element = Node::makeElement(tag);
  element->appendChild(Node::makeText(text));
  return element;
}

std::unique_ptr<Node> makeAdSlot() {
  auto slot = Node::makeElement("div");
  slot->setAttribute("class", "adslot");
  return slot;
}

std::unique_ptr<Node> makeContentSection(util::Pcg32& rng, int paragraphs,
                                         int adSlots,
                                         bool rotatingHeadline) {
  auto section = Node::makeElement("section");
  section->setAttribute("class", "content");
  section->appendChild(makeTextElement("h2", randomTitle(rng)));
  if (rotatingHeadline) {
    auto headline = Node::makeElement("h3");
    headline->setAttribute("class", "rotating-headline");
    headline->appendChild(Node::makeText(randomPhrase(rng, 5)));
    section->appendChild(std::move(headline));
  }
  for (int p = 0; p < paragraphs; ++p) {
    section->appendChild(makeTextElement(
        "p", randomParagraph(rng, static_cast<int>(rng.uniform(1, 3)))));
  }

  // Widget block: section(3) > div.widget(4) > div.inner(5) > adslot(6)
  // counting depth from <body>=0, <div id=page>=1, <main>=2 — the slot and
  // its contents sit below the paper's l=5 comparison window.
  auto widget = Node::makeElement("div");
  widget->setAttribute("class", "widget");
  auto list = Node::makeElement("ul");
  const int items = static_cast<int>(rng.uniform(3, 6));
  for (int i = 0; i < items; ++i) {
    auto item = Node::makeElement("li");
    auto anchor = Node::makeElement("a");
    anchor->setAttribute("href", "/" + randomWord(rng));
    anchor->appendChild(Node::makeText(randomPhrase(rng, 2)));
    item->appendChild(std::move(anchor));
    list->appendChild(std::move(item));
  }
  widget->appendChild(std::move(list));
  auto inner = Node::makeElement("div");
  inner->setAttribute("class", "inner");
  for (int a = 0; a < adSlots; ++a) {
    inner->appendChild(makeAdSlot());
  }
  widget->appendChild(std::move(inner));
  section->appendChild(std::move(widget));
  return section;
}

std::unique_ptr<Node> makeSidebar(util::Pcg32& rng, const std::string& title,
                                  int itemCount) {
  auto sidebar = Node::makeElement("div");
  sidebar->setAttribute("class", "sidebar");
  sidebar->appendChild(makeTextElement("h3", title));
  auto list = Node::makeElement("ul");
  for (int i = 0; i < itemCount; ++i) {
    auto item = Node::makeElement("li");
    auto anchor = Node::makeElement("a");
    anchor->setAttribute("href", "/" + randomWord(rng));
    anchor->appendChild(Node::makeText(randomPhrase(rng, 3)));
    item->appendChild(std::move(anchor));
    list->appendChild(std::move(item));
  }
  sidebar->appendChild(std::move(list));
  return sidebar;
}

std::unique_ptr<Node> makeNav(const std::string& siteTitle, int pageCount) {
  auto header = Node::makeElement("header");
  header->appendChild(makeTextElement("h1", siteTitle));
  auto nav = Node::makeElement("nav");
  auto list = Node::makeElement("ul");
  const int links = std::min(pageCount, 6);
  for (int i = 0; i < links; ++i) {
    auto item = Node::makeElement("li");
    auto anchor = Node::makeElement("a");
    anchor->setAttribute("href", i == 0 ? "/" : "/page" + std::to_string(i));
    anchor->appendChild(
        Node::makeText(i == 0 ? "Home" : "Section " + std::to_string(i)));
    item->appendChild(std::move(anchor));
    list->appendChild(std::move(item));
  }
  nav->appendChild(std::move(list));
  header->appendChild(std::move(nav));
  return header;
}

std::unique_ptr<Node> makeSignUpForm(util::Pcg32& rng) {
  auto wall = Node::makeElement("div");
  wall->setAttribute("class", "signup-wall");
  wall->appendChild(makeTextElement("h2", "Create your account"));
  wall->appendChild(makeTextElement(
      "p", "Please sign up to access " + randomPhrase(rng, 3) + "."));
  auto form = Node::makeElement("form");
  form->setAttribute("action", "/signup");
  form->setAttribute("method", "post");
  for (const char* field : {"username", "email", "password"}) {
    auto row = Node::makeElement("div");
    row->setAttribute("class", "form-row");
    auto label = Node::makeElement("label");
    label->setAttribute("for", field);
    label->appendChild(Node::makeText(std::string(field)));
    row->appendChild(std::move(label));
    auto input = Node::makeElement("input");
    input->setAttribute("name", field);
    input->setAttribute("type",
                        std::string(field) == "password" ? "password"
                                                         : "text");
    row->appendChild(std::move(input));
    form->appendChild(std::move(row));
  }
  auto submit = Node::makeElement("input");
  submit->setAttribute("type", "submit");
  submit->setAttribute("value", "Sign up");
  form->appendChild(std::move(submit));
  wall->appendChild(std::move(form));
  wall->appendChild(makeTextElement(
      "p", "Membership includes " + randomPhrase(rng, 4) + "."));
  return wall;
}

std::unique_ptr<Node> makeResultList(util::Pcg32& rng, int count) {
  auto results = Node::makeElement("div");
  results->setAttribute("class", "results");
  auto list = Node::makeElement("ol");
  for (int i = 0; i < count; ++i) {
    auto item = Node::makeElement("li");
    auto anchor = Node::makeElement("a");
    anchor->setAttribute("href", "/result" + std::to_string(i));
    anchor->appendChild(Node::makeText(randomTitle(rng)));
    item->appendChild(std::move(anchor));
    item->appendChild(Node::makeText(" — " + randomPhrase(rng, 6, true)));
    list->appendChild(std::move(item));
  }
  results->appendChild(std::move(list));
  return results;
}

std::unique_ptr<Node> makePromoBlock(util::Pcg32& rng, int variant) {
  // Each variant has a genuinely different element structure so that when a
  // site swaps variants between fetches, the change registers high in the
  // tree (the page dynamics that cause the paper's false positives).
  auto promo = Node::makeElement("div");
  // NB: class must not trip CVCE's ad-token filter ("promo" would).
  promo->setAttribute("class", "hero variant" + std::to_string(variant));
  switch (variant % 3) {
    case 0: {
      promo->appendChild(makeTextElement("h2", randomTitle(rng)));
      auto table = Node::makeElement("table");
      for (int r = 0; r < 3; ++r) {
        auto row = Node::makeElement("tr");
        for (int c = 0; c < 3; ++c) {
          row->appendChild(makeTextElement("td", randomPhrase(rng, 2)));
        }
        table->appendChild(std::move(row));
      }
      promo->appendChild(std::move(table));
      break;
    }
    case 1: {
      auto figure = Node::makeElement("figure");
      auto image = Node::makeElement("img");
      image->setAttribute("src", "/assets/promo" +
                                     std::to_string(rng.uniform(1, 5)) +
                                     ".png");
      figure->appendChild(std::move(image));
      figure->appendChild(
          makeTextElement("figcaption", randomPhrase(rng, 4)));
      promo->appendChild(std::move(figure));
      auto list = Node::makeElement("ul");
      for (int i = 0; i < 4; ++i) {
        list->appendChild(makeTextElement("li", randomPhrase(rng, 3)));
      }
      promo->appendChild(std::move(list));
      break;
    }
    default: {
      promo->appendChild(makeTextElement("h2", randomTitle(rng)));
      for (int i = 0; i < 3; ++i) {
        auto block = Node::makeElement("blockquote");
        block->appendChild(
            makeTextElement("p", randomParagraph(rng, 1)));
        block->appendChild(makeTextElement("cite", randomPhrase(rng, 2)));
        promo->appendChild(std::move(block));
      }
      break;
    }
  }
  return promo;
}

}  // namespace cookiepicker::server
