# Empty dependencies file for cp_core.
# This may be replaced when dependencies are built.
