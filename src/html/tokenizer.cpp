#include "html/tokenizer.h"

#include <cctype>

#include "html/entities.h"
#include "util/strings.h"

namespace cookiepicker::html {

using util::toLowerAscii;

namespace {

bool isTagNameStart(char ch) {
  return std::isalpha(static_cast<unsigned char>(ch)) != 0;
}

bool isWhitespace(char ch) {
  return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\f';
}

}  // namespace

bool isRawTextTag(std::string_view tagName) {
  return tagName == "script" || tagName == "style" ||
         tagName == "textarea" || tagName == "title";
}

std::vector<Token> Tokenizer::tokenizeAll(std::string_view input) {
  Tokenizer tokenizer(input);
  std::vector<Token> tokens;
  while (true) {
    Token token = tokenizer.next();
    if (token.type == TokenType::EndOfFile) break;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

Token Tokenizer::next() {
  if (!rawTextEndTag_.empty()) {
    const std::string tagName = rawTextEndTag_;
    rawTextEndTag_.clear();
    return rawText(tagName);
  }
  if (position_ >= input_.size()) {
    return Token{};  // EndOfFile
  }
  if (input_[position_] == '<') {
    // '<' not followed by tag-like syntax is literal text.
    if (position_ + 1 < input_.size()) {
      const char following = input_[position_ + 1];
      if (isTagNameStart(following) || following == '/' || following == '!' ||
          following == '?') {
        return scanMarkup();
      }
    }
    // Lone '<' at end of input or before a non-tag character: treat as text.
    const std::size_t start = position_;
    ++position_;
    while (position_ < input_.size() && input_[position_] != '<') {
      ++position_;
    }
    return textToken(start, position_);
  }
  const std::size_t start = position_;
  while (position_ < input_.size() && input_[position_] != '<') {
    ++position_;
  }
  return textToken(start, position_);
}

Token Tokenizer::textToken(std::size_t start, std::size_t end) {
  Token token;
  token.type = TokenType::Text;
  token.text = decodeEntities(input_.substr(start, end - start));
  return token;
}

Token Tokenizer::scanMarkup() {
  // position_ is at '<'.
  const char following = input_[position_ + 1];
  if (following == '!') {
    if (input_.compare(position_, 4, "<!--") == 0) {
      position_ += 4;
      return scanComment();
    }
    // "<!DOCTYPE" (any case)?
    if (input_.size() - position_ >= 9) {
      const std::string_view candidate = input_.substr(position_ + 2, 7);
      if (util::equalsIgnoreCase(candidate, "doctype")) {
        position_ += 9;
        return scanDoctype();
      }
    }
    position_ += 2;
    return scanBogusComment();
  }
  if (following == '?') {
    // Processing instruction — browsers treat it as a bogus comment.
    position_ += 2;
    return scanBogusComment();
  }
  if (following == '/') {
    position_ += 2;
    return scanTag(/*isEndTag=*/true);
  }
  position_ += 1;
  return scanTag(/*isEndTag=*/false);
}

Token Tokenizer::scanComment() {
  Token token;
  token.type = TokenType::Comment;
  const std::size_t closing = input_.find("-->", position_);
  if (closing == std::string_view::npos) {
    token.text = std::string(input_.substr(position_));
    position_ = input_.size();
  } else {
    token.text = std::string(input_.substr(position_, closing - position_));
    position_ = closing + 3;
  }
  return token;
}

Token Tokenizer::scanBogusComment() {
  Token token;
  token.type = TokenType::Comment;
  const std::size_t closing = input_.find('>', position_);
  if (closing == std::string_view::npos) {
    token.text = std::string(input_.substr(position_));
    position_ = input_.size();
  } else {
    token.text = std::string(input_.substr(position_, closing - position_));
    position_ = closing + 1;
  }
  return token;
}

Token Tokenizer::scanDoctype() {
  Token token;
  token.type = TokenType::Doctype;
  while (position_ < input_.size() && isWhitespace(input_[position_])) {
    ++position_;
  }
  const std::size_t start = position_;
  while (position_ < input_.size() && input_[position_] != '>' &&
         !isWhitespace(input_[position_])) {
    ++position_;
  }
  token.name = toLowerAscii(input_.substr(start, position_ - start));
  const std::size_t closing = input_.find('>', position_);
  position_ = closing == std::string_view::npos ? input_.size() : closing + 1;
  return token;
}

Token Tokenizer::scanTag(bool isEndTag) {
  Token token;
  token.type = isEndTag ? TokenType::EndTag : TokenType::StartTag;

  const std::size_t nameStart = position_;
  while (position_ < input_.size()) {
    const char ch = input_[position_];
    if (isWhitespace(ch) || ch == '>' || ch == '/') break;
    ++position_;
  }
  token.name = toLowerAscii(input_.substr(nameStart, position_ - nameStart));

  if (!isEndTag) {
    scanAttributes(token);
  }

  // Skip to the closing '>' (end tags may carry junk we ignore).
  while (position_ < input_.size() && input_[position_] != '>') {
    if (!isEndTag && input_[position_] == '/' &&
        position_ + 1 < input_.size() && input_[position_ + 1] == '>') {
      token.selfClosing = true;
    }
    ++position_;
  }
  if (position_ < input_.size()) ++position_;  // consume '>'

  if (token.type == TokenType::StartTag && !token.selfClosing &&
      isRawTextTag(token.name)) {
    rawTextEndTag_ = token.name;
  }
  return token;
}

void Tokenizer::scanAttributes(Token& token) {
  while (position_ < input_.size()) {
    while (position_ < input_.size() && isWhitespace(input_[position_])) {
      ++position_;
    }
    if (position_ >= input_.size()) return;
    const char ch = input_[position_];
    if (ch == '>') return;
    if (ch == '/') {
      if (position_ + 1 < input_.size() && input_[position_ + 1] == '>') {
        token.selfClosing = true;
        ++position_;  // leave '>' for scanTag
        return;
      }
      ++position_;  // stray '/': skip
      continue;
    }

    // Attribute name.
    const std::size_t nameStart = position_;
    while (position_ < input_.size()) {
      const char nameChar = input_[position_];
      if (isWhitespace(nameChar) || nameChar == '=' || nameChar == '>' ||
          nameChar == '/') {
        break;
      }
      ++position_;
    }
    std::string name =
        toLowerAscii(input_.substr(nameStart, position_ - nameStart));
    if (name.empty()) {
      ++position_;  // defensive: avoid infinite loop on weird input
      continue;
    }

    while (position_ < input_.size() && isWhitespace(input_[position_])) {
      ++position_;
    }
    std::string value;
    if (position_ < input_.size() && input_[position_] == '=') {
      ++position_;
      while (position_ < input_.size() && isWhitespace(input_[position_])) {
        ++position_;
      }
      if (position_ < input_.size() &&
          (input_[position_] == '"' || input_[position_] == '\'')) {
        const char quote = input_[position_];
        ++position_;
        const std::size_t valueStart = position_;
        while (position_ < input_.size() && input_[position_] != quote) {
          ++position_;
        }
        value = decodeEntities(
            input_.substr(valueStart, position_ - valueStart));
        if (position_ < input_.size()) ++position_;  // closing quote
      } else {
        const std::size_t valueStart = position_;
        while (position_ < input_.size()) {
          const char valueChar = input_[position_];
          if (isWhitespace(valueChar) || valueChar == '>') break;
          ++position_;
        }
        value = decodeEntities(
            input_.substr(valueStart, position_ - valueStart));
      }
    }
    // First occurrence wins, as in browsers.
    bool duplicate = false;
    for (const dom::Attribute& existing : token.attributes) {
      if (existing.name == name) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      token.attributes.push_back({std::move(name), std::move(value)});
    }
  }
}

Token Tokenizer::rawText(const std::string& tagName) {
  // Consume everything up to "</tagName" (case-insensitive).
  const std::string closingPrefix = "</" + tagName;
  std::size_t search = position_;
  std::size_t contentEnd = input_.size();
  while (search < input_.size()) {
    const std::size_t lt = input_.find('<', search);
    if (lt == std::string_view::npos) break;
    if (lt + closingPrefix.size() <= input_.size() &&
        util::equalsIgnoreCase(input_.substr(lt, closingPrefix.size()),
                               closingPrefix)) {
      contentEnd = lt;
      break;
    }
    search = lt + 1;
  }

  Token token;
  token.type = TokenType::Text;
  const std::string_view content =
      input_.substr(position_, contentEnd - position_);
  // textarea/title content gets entity decoding; script/style does not.
  if (tagName == "textarea" || tagName == "title") {
    token.text = decodeEntities(content);
  } else {
    token.text = std::string(content);
  }
  position_ = contentEnd;
  return token;
}

}  // namespace cookiepicker::html
