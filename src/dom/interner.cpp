#include "dom/interner.h"

#include <mutex>
#include <stdexcept>

namespace cookiepicker::dom {

SymbolId SymbolInterner::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::string SymbolInterner::name(SymbolId id) const {
  std::shared_lock lock(mutex_);
  return id < names_.size() ? names_[id] : std::string();
}

std::size_t SymbolInterner::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

namespace {

// Packs (parent, seeded, tag) into the interner key. Seeded paths have no
// parent; extensions carry theirs. Context populations are tiny (one entry
// per distinct DOM path prefix), so 31 bits of parent is never a limit in
// practice — guard anyway rather than silently aliasing.
std::uint64_t packContextKey(ContextId parent, bool seeded, SymbolId tag) {
  if (parent >= (1U << 31)) {
    throw std::length_error("ContextInterner: parent id overflow");
  }
  const std::uint64_t high = (static_cast<std::uint64_t>(parent) << 1) |
                             (seeded ? 1U : 0U);
  return (high << 32) | tag;
}

}  // namespace

ContextId ContextInterner::seed(SymbolId tag) {
  return internKey(packContextKey(kEmpty, /*seeded=*/true, tag));
}

ContextId ContextInterner::extend(ContextId parent, SymbolId tag) {
  return internKey(packContextKey(parent, /*seeded=*/false, tag));
}

ContextId ContextInterner::internKey(std::uint64_t key) {
  {
    std::shared_lock lock(mutex_);
    const auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto [it, inserted] = ids_.emplace(key, next_);
  if (inserted) ++next_;
  return it->second;
}

std::size_t ContextInterner::size() const {
  std::shared_lock lock(mutex_);
  return ids_.size();
}

SymbolInterner& globalSymbolInterner() {
  static SymbolInterner interner;
  return interner;
}

ContextInterner& globalContextInterner() {
  static ContextInterner interner;
  return interner;
}

void warmGlobalInterners() {
  static constexpr const char* kCommonNames[] = {
      "#document", "#text",  "#comment", "html",   "head",  "body",
      "title",     "meta",   "link",     "base",   "style", "script",
      "noscript",  "div",    "span",     "p",      "a",     "img",
      "ul",        "ol",     "li",       "table",  "tr",    "td",
      "th",        "thead",  "tbody",    "form",   "input", "select",
      "option",    "button", "h1",       "h2",     "h3",    "h4",
      "b",         "i",      "em",       "strong", "br",    "hr",
      "iframe",    "embed",  "label",    "textarea"};
  SymbolInterner& symbols = globalSymbolInterner();
  for (const char* name : kCommonNames) symbols.intern(name);
}

}  // namespace cookiepicker::dom
