#include "obs/audit.h"

#include <charconv>
#include <cstdio>

namespace cookiepicker::obs {

namespace {

// JSON string escaping for the few byte values that need it; everything
// else passes through (our hosts/paths/evidence are ASCII by construction,
// but cookie names are attacker-influenced, so control bytes must survive).
void appendEscaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  out += '"';
}

// Shortest round-trip rendering: strtod(to_chars(x)) == x exactly, and the
// bytes are a pure function of the double — the determinism anchor.
void appendDouble(std::string& out, double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, ptr);
  (void)ec;
}

void appendKey(std::string& out, const char* key) {
  if (out.back() != '{') out += ',';
  out += '"';
  out += key;
  out += "\":";
}

void appendStringField(std::string& out, const char* key,
                       std::string_view value) {
  appendKey(out, key);
  appendEscaped(out, value);
}

void appendDoubleField(std::string& out, const char* key, double value) {
  appendKey(out, key);
  appendDouble(out, value);
}

void appendIntField(std::string& out, const char* key, std::int64_t value) {
  appendKey(out, key);
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, ptr);
  (void)ec;
}

void appendUintField(std::string& out, const char* key, std::uint64_t value) {
  appendKey(out, key);
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, ptr);
  (void)ec;
}

void appendBoolField(std::string& out, const char* key, bool value) {
  appendKey(out, key);
  out += value ? "true" : "false";
}

void appendArrayField(std::string& out, const char* key,
                      const std::vector<std::string>& values) {
  appendKey(out, key);
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    appendEscaped(out, values[i]);
  }
  out += ']';
}

// --- parsing --------------------------------------------------------------

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  bool consume(char expected) {
    if (done() || text[pos] != expected) return false;
    ++pos;
    return true;
  }
};

int hexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parseString(Cursor& cursor, std::string& out) {
  out.clear();
  if (!cursor.consume('"')) return false;
  while (!cursor.done()) {
    const char c = cursor.text[cursor.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cursor.done()) return false;
    const char escape = cursor.text[cursor.pos++];
    switch (escape) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (cursor.pos + 4 > cursor.text.size()) return false;
        int value = 0;
        for (int i = 0; i < 4; ++i) {
          const int digit = hexValue(cursor.text[cursor.pos + i]);
          if (digit < 0) return false;
          value = value * 16 + digit;
        }
        cursor.pos += 4;
        if (value > 0xFF) return false;  // we only emit control bytes
        out += static_cast<char>(value);
        break;
      }
      default:
        return false;
    }
  }
  return false;
}

std::string_view numberToken(Cursor& cursor) {
  const std::size_t start = cursor.pos;
  while (!cursor.done()) {
    const char c = cursor.peek();
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      ++cursor.pos;
    } else {
      break;
    }
  }
  return cursor.text.substr(start, cursor.pos - start);
}

bool parseDouble(Cursor& cursor, double& out) {
  const std::string_view token = numberToken(cursor);
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parseInt(Cursor& cursor, std::int64_t& out) {
  const std::string_view token = numberToken(cursor);
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parseUint(Cursor& cursor, std::uint64_t& out) {
  const std::string_view token = numberToken(cursor);
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parseBool(Cursor& cursor, bool& out) {
  if (cursor.text.substr(cursor.pos, 4) == "true") {
    cursor.pos += 4;
    out = true;
    return true;
  }
  if (cursor.text.substr(cursor.pos, 5) == "false") {
    cursor.pos += 5;
    out = false;
    return true;
  }
  return false;
}

bool parseStringArray(Cursor& cursor, std::vector<std::string>& out) {
  out.clear();
  if (!cursor.consume('[')) return false;
  if (cursor.consume(']')) return true;
  while (true) {
    std::string value;
    if (!parseString(cursor, value)) return false;
    out.push_back(std::move(value));
    if (cursor.consume(']')) return true;
    if (!cursor.consume(',')) return false;
  }
}

}  // namespace

std::string AuditRecord::toJsonLine() const {
  std::string out = "{";
  appendUintField(out, "seq", seq);
  appendStringField(out, "host", host);
  appendStringField(out, "url", url);
  appendIntField(out, "view", view);
  appendArrayField(out, "tested", testedGroup);
  appendDoubleField(out, "tree_sim", treeSim);
  appendDoubleField(out, "text_sim", textSim);
  appendDoubleField(out, "tree_threshold", treeThreshold);
  appendDoubleField(out, "text_threshold", textThreshold);
  appendIntField(out, "level", level);
  appendStringField(out, "mode", mode);
  appendStringField(out, "branch", branch);
  appendStringField(out, "skipped_reason", skippedReason);
  appendBoolField(out, "caused_by_cookies", causedByCookies);
  appendBoolField(out, "reprobe_ran", reprobeRan);
  appendBoolField(out, "reprobe_vetoed", reprobeVetoed);
  appendDoubleField(out, "reprobe_tree_sim", reprobeTreeSim);
  appendDoubleField(out, "reprobe_text_sim", reprobeTextSim);
  appendDoubleField(out, "hidden_latency_ms", hiddenLatencyMs);
  appendIntField(out, "hidden_attempts", hiddenAttempts);
  appendIntField(out, "views_total", viewsTotal);
  appendIntField(out, "hidden_requests", hiddenRequests);
  appendIntField(out, "quiet_before", quietBefore);
  appendIntField(out, "quiet_after", quietAfter);
  appendBoolField(out, "training_active_after", trainingActiveAfter);
  appendArrayField(out, "marked", marked);
  if (hasAttribution) {
    appendStringField(out, "attributed_cookie", attributedCookie);
    appendBoolField(out, "attribution_confirmed", attributionConfirmed);
    appendIntField(out, "attribution_confirm_strips",
                   attributionConfirmStrips);
  }
  appendArrayField(out, "evidence_structure_regular",
                   evidenceStructureRegular);
  appendArrayField(out, "evidence_structure_hidden", evidenceStructureHidden);
  appendArrayField(out, "evidence_text_regular", evidenceTextRegular);
  appendArrayField(out, "evidence_text_hidden", evidenceTextHidden);
  out += '}';
  return out;
}

std::optional<AuditRecord> parseAuditRecordLine(std::string_view line) {
  AuditRecord record;
  Cursor cursor{line};
  if (!cursor.consume('{')) return std::nullopt;
  std::string key;
  while (true) {
    if (!parseString(cursor, key)) return std::nullopt;
    if (!cursor.consume(':')) return std::nullopt;
    bool ok;
    if (key == "seq") {
      ok = parseUint(cursor, record.seq);
    } else if (key == "host") {
      ok = parseString(cursor, record.host);
    } else if (key == "url") {
      ok = parseString(cursor, record.url);
    } else if (key == "view") {
      ok = parseInt(cursor, record.view);
    } else if (key == "tested") {
      ok = parseStringArray(cursor, record.testedGroup);
    } else if (key == "tree_sim") {
      ok = parseDouble(cursor, record.treeSim);
    } else if (key == "text_sim") {
      ok = parseDouble(cursor, record.textSim);
    } else if (key == "tree_threshold") {
      ok = parseDouble(cursor, record.treeThreshold);
    } else if (key == "text_threshold") {
      ok = parseDouble(cursor, record.textThreshold);
    } else if (key == "level") {
      ok = parseInt(cursor, record.level);
    } else if (key == "mode") {
      ok = parseString(cursor, record.mode);
    } else if (key == "branch") {
      ok = parseString(cursor, record.branch);
    } else if (key == "skipped_reason") {
      ok = parseString(cursor, record.skippedReason);
    } else if (key == "caused_by_cookies") {
      ok = parseBool(cursor, record.causedByCookies);
    } else if (key == "reprobe_ran") {
      ok = parseBool(cursor, record.reprobeRan);
    } else if (key == "reprobe_vetoed") {
      ok = parseBool(cursor, record.reprobeVetoed);
    } else if (key == "reprobe_tree_sim") {
      ok = parseDouble(cursor, record.reprobeTreeSim);
    } else if (key == "reprobe_text_sim") {
      ok = parseDouble(cursor, record.reprobeTextSim);
    } else if (key == "hidden_latency_ms") {
      ok = parseDouble(cursor, record.hiddenLatencyMs);
    } else if (key == "hidden_attempts") {
      ok = parseInt(cursor, record.hiddenAttempts);
    } else if (key == "views_total") {
      ok = parseInt(cursor, record.viewsTotal);
    } else if (key == "hidden_requests") {
      ok = parseInt(cursor, record.hiddenRequests);
    } else if (key == "quiet_before") {
      ok = parseInt(cursor, record.quietBefore);
    } else if (key == "quiet_after") {
      ok = parseInt(cursor, record.quietAfter);
    } else if (key == "training_active_after") {
      ok = parseBool(cursor, record.trainingActiveAfter);
    } else if (key == "marked") {
      ok = parseStringArray(cursor, record.marked);
    } else if (key == "attributed_cookie") {
      ok = parseString(cursor, record.attributedCookie);
      record.hasAttribution = true;
    } else if (key == "attribution_confirmed") {
      ok = parseBool(cursor, record.attributionConfirmed);
      record.hasAttribution = true;
    } else if (key == "attribution_confirm_strips") {
      ok = parseInt(cursor, record.attributionConfirmStrips);
      record.hasAttribution = true;
    } else if (key == "evidence_structure_regular") {
      ok = parseStringArray(cursor, record.evidenceStructureRegular);
    } else if (key == "evidence_structure_hidden") {
      ok = parseStringArray(cursor, record.evidenceStructureHidden);
    } else if (key == "evidence_text_regular") {
      ok = parseStringArray(cursor, record.evidenceTextRegular);
    } else if (key == "evidence_text_hidden") {
      ok = parseStringArray(cursor, record.evidenceTextHidden);
    } else {
      return std::nullopt;  // closed format: unknown keys are corruption
    }
    if (!ok) return std::nullopt;
    if (cursor.consume('}')) break;
    if (!cursor.consume(',')) return std::nullopt;
  }
  // Trailing bytes after the closing brace are corruption too.
  if (!cursor.done()) return std::nullopt;
  return record;
}

const char* figure5Branch(bool treeDiffers, bool textDiffers) {
  if (treeDiffers && textDiffers) return "both-differ";
  if (treeDiffers) return "tree-only-differs";
  if (textDiffers) return "text-only-differs";
  return "neither-differs";
}

bool figure5Verdict(std::string_view mode, bool treeDiffers,
                    bool textDiffers) {
  if (mode == "both") return treeDiffers && textDiffers;
  if (mode == "tree-only") return treeDiffers;
  if (mode == "text-only") return textDiffers;
  if (mode == "either") return treeDiffers || textDiffers;
  return false;
}

void AuditTrail::append(AuditRecord& record) {
  std::lock_guard lock(mutex_);
  record.seq = ++seq_;
  lines_ += record.toJsonLine();
  lines_ += '\n';
}

std::string AuditTrail::jsonl() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

std::uint64_t AuditTrail::recordCount() const {
  std::lock_guard lock(mutex_);
  return seq_;
}

}  // namespace cookiepicker::obs
