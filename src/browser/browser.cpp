#include "browser/browser.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "html/parser.h"
#include "obs/recorder.h"
#include "util/log.h"
#include "util/strings.h"

namespace cookiepicker::browser {

ThinkTimeModel::ThinkTimeModel(double medianSeconds, double sigma,
                               double floorSeconds)
    : mu_(std::log(medianSeconds * 1000.0)),
      sigma_(sigma),
      floorMs_(floorSeconds * 1000.0) {}

double ThinkTimeModel::sampleMs(util::Pcg32& rng) const {
  return std::max(floorMs_, rng.logNormal(mu_, sigma_));
}

Browser::Browser(net::Transport& transport, util::SimClock& clock,
                 cookies::CookiePolicy policy, std::uint64_t seed)
    : transport_(transport),
      clock_(clock),
      policy_(policy),
      rng_(seed, /*sequence=*/0x62726f77UL) {}

net::HttpRequest Browser::buildRequest(const net::Url& url,
                                       const net::Url& documentUrl,
                                       net::RequestKind kind) {
  net::HttpRequest request;
  request.method = "GET";
  request.url = url;
  request.kind = kind;
  request.headers.set("User-Agent", "CookiePickerSim/1.0 (Firefox/1.5 model)");
  request.headers.set("Accept", "text/html,*/*");
  // Container documents only: subresources carry no markup to attribute,
  // and the header must stay off the wire entirely when provenance is off.
  if (wantProvenance_ && kind != net::RequestKind::Subresource) {
    request.headers.set(provenance::kWantProvenanceHeader, "1");
  }

  cookies::SendOptions options;
  const bool firstParty = cookies::isFirstParty(url, documentUrl);
  if (!firstParty && !policy_.acceptThirdParty) {
    // Third-party cookies disabled: send none to third-party hosts.
    options.includeSession = false;
    options.includePersistent = false;
  }
  if (persistentSendFilter_) {
    options.excludePersistentIf = persistentSendFilter_;
  }
  const std::string cookieHeader =
      jar_.cookieHeaderFor(url, clock_.nowMs(), options);
  if (!cookieHeader.empty()) {
    request.headers.set("Cookie", cookieHeader);
  }
  return request;
}

void Browser::storeResponseCookies(const net::HttpResponse& response,
                                   const net::Url& requestUrl,
                                   const net::Url& documentUrl) {
  const bool firstParty = cookies::isFirstParty(requestUrl, documentUrl);
  for (const std::string& header : response.setCookieHeaders()) {
    const auto parsed = net::parseSetCookie(header);
    if (!parsed.has_value()) continue;
    const bool persistent =
        parsed->maxAgeSeconds.has_value() ||
        parsed->expiresEpochSeconds.has_value();
    if (!policy_.shouldAccept(firstParty, persistent)) {
      CP_LOG_DEBUG << "policy rejected cookie " << parsed->name << " from "
                   << requestUrl.host();
      continue;
    }
    jar_.store(*parsed, requestUrl, firstParty, clock_.nowMs());
  }
}

// Streaming twin of collectSubresources: the builder already walked the
// document in preorder and recorded the raw references plus the first
// <base href>; only URL resolution is left.
std::vector<net::Url> Browser::resolveSubresources(
    const html::StreamPageInfo& page, const net::Url& documentUrl) const {
  const net::Url baseUrl = page.baseHref.empty()
                               ? documentUrl
                               : documentUrl.resolve(page.baseHref);
  std::vector<net::Url> resources;
  resources.reserve(page.subresourceRefs.size());
  for (const std::string& reference : page.subresourceRefs) {
    resources.push_back(baseUrl.resolve(reference));
  }
  return resources;
}

std::vector<net::Url> Browser::collectSubresources(
    const dom::Node& document, const net::Url& documentUrl) const {
  // <base href> (first one wins) changes the URL all relative references
  // resolve against.
  net::Url baseUrl = documentUrl;
  if (const dom::Node* base = document.findFirst("base")) {
    if (const auto href = base->attribute("href");
        href.has_value() && !href->empty()) {
      baseUrl = documentUrl.resolve(*href);
    }
  }
  std::vector<net::Url> resources;
  dom::preorder(document, [&](const dom::Node& node, std::size_t) {
    if (!node.isElement()) return true;
    const std::string& tag = node.name();
    std::optional<std::string> reference;
    if (tag == "img" || tag == "script" || tag == "iframe" ||
        tag == "embed") {
      reference = node.attribute("src");
    } else if (tag == "link") {
      const auto rel = node.attribute("rel");
      if (rel.has_value() &&
          util::containsIgnoreCase(*rel, "stylesheet")) {
        reference = node.attribute("href");
      }
    }
    if (reference.has_value() && !reference->empty()) {
      resources.push_back(baseUrl.resolve(*reference));
    }
    return true;
  });
  return resources;
}

std::shared_ptr<const provenance::ProvenanceMap> Browser::extractProvenance(
    const net::HttpResponse& response) const {
  if (!wantProvenance_) return nullptr;
  const auto header = response.headers.get(provenance::kCookieProvenanceHeader);
  if (!header.has_value()) return nullptr;
  auto decoded = provenance::ProvenanceMap::decodeHeader(*header);
  if (!decoded.has_value()) return nullptr;
  return std::make_shared<const provenance::ProvenanceMap>(
      std::move(*decoded));
}

PageView Browser::visit(const std::string& url) {
  const auto parsed = net::Url::parse(url);
  if (!parsed.has_value()) {
    PageView view;
    view.status = 0;
    if (domMode_ == DomMode::Streaming) {
      view.snapshot = streamBuilder_.build("").snapshot;
    } else {
      view.document = html::parseHtml("");
      view.snapshot =
          std::make_shared<const dom::TreeSnapshot>(*view.document);
    }
    return view;
  }
  return visit(*parsed);
}

PageView Browser::visit(const net::Url& url) {
  obs::ScopedTimer visitSpan(obs::Timer::PageVisit);
  obs::count(obs::Counter::PagesVisited);
  PageView view;
  net::Url current = url;
  net::HttpRequest request;
  net::Exchange exchange;

  // Step one of FORCUM: follow temporary redirection / replacement pages to
  // the real container document, saving the final request.
  for (int redirect = 0; redirect <= kMaxRedirects; ++redirect) {
    request = buildRequest(current, current);
    exchange = transport_.dispatch(request);
    view.timing.containerLatencyMs += exchange.latencyMs;
    clock_.advanceMs(static_cast<util::SimTimeMs>(exchange.latencyMs));
    storeResponseCookies(exchange.response, current, current);
    if (!exchange.response.isRedirect()) break;
    const auto location = exchange.response.headers.get("Location");
    if (!location.has_value()) break;
    current = current.resolve(*location);
    ++view.timing.redirectCount;
    obs::count(obs::Counter::RedirectsFollowed);
  }

  view.url = current;
  view.containerRequest = request;
  view.status = exchange.response.status;
  view.containerHtml = exchange.response.body;
  view.provenance = extractProvenance(exchange.response);
  if (domMode_ == DomMode::Streaming) {
    // One pass: tokens flow straight into the snapshot arrays, and the
    // subresource references fall out of the same walk. No node tree.
    obs::ScopedTimer streamSpan(obs::Timer::StreamBuild);
    html::StreamParseResult streamed = streamBuilder_.build(
        view.containerHtml, {}, view.provenance.get());
    view.snapshot = std::move(streamed.snapshot);
    view.subresources = resolveSubresources(streamed.page, view.url);
  } else {
    {
      obs::ScopedTimer parseSpan(obs::Timer::HtmlParse);
      view.document = html::parseHtml(view.containerHtml);
    }
    // Flatten once at parse time; every detection step over this view reads
    // the cached snapshot instead of re-walking the node tree.
    {
      obs::ScopedTimer snapshotSpan(obs::Timer::SnapshotBuild);
      view.snapshot =
          std::make_shared<const dom::TreeSnapshot>(*view.document);
    }
    view.subresources = collectSubresources(*view.document, view.url);
  }

  // Object requests (stylesheets, images, scripts).
  double maxBatchMs = 0.0;
  double batchMs = 0.0;
  int inBatch = 0;
  for (const net::Url& resource : view.subresources) {
    net::HttpRequest subRequest =
        buildRequest(resource, view.url, net::RequestKind::Subresource);
    const net::Exchange subExchange = transport_.dispatch(subRequest);
    ++objectRequests_;
    obs::count(obs::Counter::SubresourceFetches);
    storeResponseCookies(subExchange.response, resource, view.url);
    batchMs = std::max(batchMs, subExchange.latencyMs);
    if (++inBatch == kParallelConnections) {
      maxBatchMs += batchMs;
      batchMs = 0.0;
      inBatch = 0;
    }
  }
  maxBatchMs += batchMs;
  view.timing.subresourceCount = static_cast<int>(view.subresources.size());
  view.timing.subresourceLatencyMs = maxBatchMs;
  view.timing.totalLoadMs =
      view.timing.containerLatencyMs + view.timing.subresourceLatencyMs;
  clock_.advanceMs(static_cast<util::SimTimeMs>(maxBatchMs));
  view.loadedAtMs = clock_.nowMs();
  return view;
}

HiddenFetchPlan Browser::planHiddenFetch(
    const PageView& view,
    const std::function<bool(const cookies::CookieRecord&)>&
        excludePersistent) {
  HiddenFetchPlan plan;

  // Section 3.2, step two: the hidden request "uses the same URI as the
  // saved [request]. It only modifies the Cookie field of the request
  // header by removing a group of cookies". Starting from the *saved*
  // header (not the live jar) matters: cookies that arrived with this very
  // response must not leak into the hidden copy, or the comparison would
  // invert.
  plan.request = view.containerRequest;

  // Resolve the tested group to names: jar records matching this URL for
  // which the exclusion predicate holds.
  std::set<std::string> strippedNames;
  if (excludePersistent) {
    for (const cookies::CookieRecord* record :
         jar_.cookiesFor(view.url, clock_.nowMs())) {
      if (record->persistent && excludePersistent(*record)) {
        strippedNames.insert(record->key.name);
        plan.strippedCookies.push_back(record->key);
      }
    }
  }

  std::vector<std::pair<std::string, std::string>> kept;
  for (auto& pair :
       net::parseCookieHeader(view.containerRequest.cookieHeader())) {
    if (!strippedNames.contains(pair.first)) {
      kept.push_back(std::move(pair));
    }
  }
  const std::string cookieHeader = net::formatCookieHeader(kept);
  if (cookieHeader.empty()) {
    plan.request.headers.remove("Cookie");
  } else {
    plan.request.headers.set("Cookie", cookieHeader);
  }
  plan.request.kind = net::RequestKind::Hidden;
  plan.request.attempt = 0;
  return plan;
}

HiddenFetchResult Browser::completeHiddenFetch(
    HiddenFetchPlan plan, const net::Exchange& finalExchange, int attempts,
    double latencySoFarMs, bool degraded, std::string degradedReason) {
  HiddenFetchResult result;
  result.strippedCookies = std::move(plan.strippedCookies);
  result.attempts = attempts;
  result.latencyMs = latencySoFarMs + finalExchange.latencyMs;
  result.degraded = degraded;
  result.degradedReason = std::move(degradedReason);
  result.truncated = net::bodyTruncated(finalExchange.response);
  result.status = finalExchange.response.status;
  result.html = finalExchange.response.body;
  result.provenance = extractProvenance(finalExchange.response);
  // Flattened by the same pipeline as the regular copy, per Section 3.2
  // step three (the hidden copy fetches no objects, so its page info is
  // discarded).
  if (domMode_ == DomMode::Streaming) {
    obs::ScopedTimer streamSpan(obs::Timer::StreamBuild);
    result.snapshot =
        streamBuilder_.build(result.html, {}, result.provenance.get())
            .snapshot;
  } else {
    {
      obs::ScopedTimer parseSpan(obs::Timer::HtmlParse);
      result.document = html::parseHtml(result.html);
    }
    obs::ScopedTimer snapshotSpan(obs::Timer::SnapshotBuild);
    result.snapshot =
        std::make_shared<const dom::TreeSnapshot>(*result.document);
  }
  // The hidden response triggers no object loads and its Set-Cookie headers
  // are deliberately ignored.
  clock_.advanceMs(static_cast<util::SimTimeMs>(finalExchange.latencyMs));
  return result;
}

HiddenFetchResult Browser::hiddenFetch(
    const PageView& view,
    const std::function<bool(const cookies::CookieRecord&)>&
        excludePersistent) {
  obs::ScopedTimer hiddenSpan(obs::Timer::HiddenFetch);
  obs::count(obs::Counter::HiddenFetches);
  HiddenFetchPlan plan = planHiddenFetch(view, excludePersistent);

  if (transport_.ownsRetryTiming()) {
    // Socket mode: attempts and backoffs run on the transport's event-loop
    // timer wheel, in real time. The virtual clock still records the
    // measured wait so session timing stays coherent.
    net::RetrySpec spec;
    spec.maxAttempts = hiddenRetryPolicy_.maxAttempts;
    spec.initialBackoffMs = hiddenRetryPolicy_.initialBackoffMs;
    spec.backoffMultiplier = hiddenRetryPolicy_.backoffMultiplier;
    spec.maxBackoffMs = hiddenRetryPolicy_.maxBackoffMs;
    spec.jitterFraction = hiddenRetryPolicy_.jitterFraction;
    spec.retryBudget =
        hiddenRetriesUsed_ >= hiddenRetryPolicy_.sessionRetryBudget
            ? 0
            : hiddenRetryPolicy_.sessionRetryBudget - hiddenRetriesUsed_;
    net::FetchOutcome outcome =
        transport_.dispatchWithRetry(plan.request, spec);
    hiddenRetriesUsed_ += static_cast<std::uint64_t>(outcome.retriesUsed);
    obs::count(obs::Counter::HiddenFetchRetries,
               static_cast<std::uint64_t>(outcome.retriesUsed));
    if (outcome.degraded) {
      if (outcome.budgetExhausted) {
        obs::count(obs::Counter::HiddenRetryBudgetExhausted);
      }
      obs::count(obs::Counter::HiddenFetchExhausted);
    }
    const double earlierMs =
        outcome.totalLatencyMs - outcome.exchange.latencyMs;
    clock_.advanceMs(static_cast<util::SimTimeMs>(earlierMs));
    return completeHiddenFetch(std::move(plan), outcome.exchange,
                               outcome.attempts, earlierMs, outcome.degraded,
                               std::move(outcome.failureReason));
  }

  // Sim mode: dispatch with bounded retry on the virtual clock. Failed
  // attempts advance the clock by their own round trip plus an exponential
  // jittered backoff; the final attempt's latency is applied after parsing,
  // exactly where the pre-retry code advanced it, so a clean fetch replays
  // byte-identically.
  net::HttpRequest& request = plan.request;
  net::Exchange exchange;
  std::string failureReason;
  int attempts = 0;
  double latencySoFarMs = 0.0;
  bool degraded = false;
  for (int attempt = 0;; ++attempt) {
    request.attempt = attempt;
    exchange = transport_.dispatch(request);
    ++attempts;
    failureReason = net::fetchFailureReason(exchange.response);
    if (failureReason.empty()) break;
    if (attempt + 1 >= hiddenRetryPolicy_.maxAttempts) {
      degraded = true;
      obs::count(obs::Counter::HiddenFetchExhausted);
      break;
    }
    if (hiddenRetriesUsed_ >= hiddenRetryPolicy_.sessionRetryBudget) {
      degraded = true;
      obs::count(obs::Counter::HiddenRetryBudgetExhausted);
      obs::count(obs::Counter::HiddenFetchExhausted);
      break;
    }
    latencySoFarMs += exchange.latencyMs;
    clock_.advanceMs(static_cast<util::SimTimeMs>(exchange.latencyMs));
    double backoff =
        std::min(hiddenRetryPolicy_.initialBackoffMs *
                     std::pow(hiddenRetryPolicy_.backoffMultiplier,
                              static_cast<double>(attempt)),
                 hiddenRetryPolicy_.maxBackoffMs);
    // Jitter is drawn from the session RNG only when a retry actually
    // happens, so fault-free runs consume no extra draws.
    backoff += backoff * hiddenRetryPolicy_.jitterFraction *
               (2.0 * rng_.uniform01() - 1.0);
    clock_.advanceMs(static_cast<util::SimTimeMs>(backoff));
    latencySoFarMs += backoff;
    ++hiddenRetriesUsed_;
    obs::count(obs::Counter::HiddenFetchRetries);
  }
  return completeHiddenFetch(std::move(plan), exchange, attempts,
                             latencySoFarMs, degraded,
                             std::move(failureReason));
}

double Browser::think() {
  const double thinkMs = thinkTime_.sampleMs(rng_);
  clock_.advanceMs(static_cast<util::SimTimeMs>(thinkMs));
  return thinkMs;
}

}  // namespace cookiepicker::browser
