// Ablation: cookie-group testing strategy (design decision 3). The paper
// strips *all* persistent cookies in one hidden request per page view —
// one request, but co-sent useless cookies get marked together with useful
// ones (Table 2's P5/P6). The PerCookie extension (Section 7 future work)
// tests one unmarked cookie per view instead: precise marks, more views to
// converge. This bench quantifies that trade on the Table 2 roster.
#include <cstdio>

#include "bench_support.h"
#include "server/generator.h"
#include "util/stats.h"

int main() {
  using namespace cookiepicker;

  std::printf("=== Group-testing ablation: AllPersistent vs PerCookie ===\n\n");

  const auto roster = server::table2Roster();

  struct ModeRow {
    core::CookieGroupMode groupMode;
    core::AttributionMode attribution;
    const char* name;
  };
  const ModeRow modes[] = {
      {core::CookieGroupMode::AllPersistent, core::AttributionMode::Off,
       "AllPersistent (the paper)"},
      {core::CookieGroupMode::PerCookie, core::AttributionMode::Off,
       "PerCookie (extension, one per view)"},
      {core::CookieGroupMode::Bisection, core::AttributionMode::Off,
       "Bisection (extension, binary search)"},
      {core::CookieGroupMode::AllPersistent, core::AttributionMode::Provenance,
       "Provenance attribution (extension, taint-nominated)"},
  };
  for (const ModeRow& mode : modes) {
    bench::CampaignOptions options;
    options.viewsPerSite = 30;
    options.picker.forcum.groupMode = mode.groupMode;
    options.picker.forcum.attribution = mode.attribution;
    const bench::CampaignResult result = bench::runCampaign(roster, options);

    std::printf("--- %s ---\n", mode.name);
    util::TextTable table({"Site", "Marked Useful", "Real Useful",
                           "over-marked", "hidden reqs", "hidden/verdict"});
    int totalOverMarked = 0;
    int totalMissed = 0;
    int totalHidden = 0;
    int totalMarked = 0;
    for (const bench::SiteResult& site : result.sites) {
      const int overMarked =
          std::max(0, site.markedUseful - site.realUseful);
      totalOverMarked += overMarked;
      totalMissed += std::max(0, site.realUseful - site.markedUseful);
      totalHidden += site.hiddenRequests;
      totalMarked += site.markedUseful;
      char perVerdict[32];
      if (site.markedUseful > 0) {
        std::snprintf(perVerdict, sizeof(perVerdict), "%.1f",
                      static_cast<double>(site.hiddenRequests) /
                          site.markedUseful);
      } else {
        std::snprintf(perVerdict, sizeof(perVerdict), "-");
      }
      table.addRow({site.label, std::to_string(site.markedUseful),
                    std::to_string(site.realUseful),
                    std::to_string(overMarked),
                    std::to_string(site.hiddenRequests), perVerdict});
    }
    std::printf("%s", table.render().c_str());
    std::printf("over-marked useless cookies: %d, missed useful: %d\n",
                totalOverMarked, totalMissed);
    if (totalMarked > 0) {
      std::printf("hidden requests: %d (%.2f per verdict)\n\n", totalHidden,
                  static_cast<double>(totalHidden) / totalMarked);
    } else {
      std::printf("hidden requests: %d (no verdicts)\n\n", totalHidden);
    }
  }
  std::printf(
      "Expected shape: AllPersistent over-marks the co-sent trackers of P5\n"
      "and P6 (paper: 8 + 3 = 11 extra cookies kept) with one hidden\n"
      "request per view; PerCookie eliminates over-marking at the cost of\n"
      "slower convergence (one candidate tested per view); provenance\n"
      "attribution keeps PerCookie's precision while resolving each verdict\n"
      "in O(1) hidden rounds (nominate + confirm).\n");
  return 0;
}
