// Section 5.3: evasion against CookiePicker, and the consistency-reprobe
// countermeasure extension.
#include <gtest/gtest.h>

#include <memory>

#include "core/cookie_picker.h"
#include "server/evasion.h"
#include "server/generator.h"
#include "server/site.h"
#include "test_support.h"

namespace cookiepicker {
namespace {

using core::CookieGroupMode;
using core::CookiePicker;
using core::CookiePickerConfig;
using testsupport::SimWorld;

// --- HiddenRequestDetector ----------------------------------------------------

TEST(HiddenRequestDetector, FirstRequestIsNeverAProbe) {
  server::HiddenRequestDetector detector;
  EXPECT_FALSE(detector.looksLikeProbe("/", 3, 1000));
}

TEST(HiddenRequestDetector, RepeatWithFewerCookiesInWindowIsProbe) {
  server::HiddenRequestDetector detector;
  detector.looksLikeProbe("/", 3, 1000);
  EXPECT_TRUE(detector.looksLikeProbe("/", 0, 3000));
}

TEST(HiddenRequestDetector, RepeatWithSameCookiesIsNotProbe) {
  server::HiddenRequestDetector detector;
  detector.looksLikeProbe("/", 3, 1000);
  EXPECT_FALSE(detector.looksLikeProbe("/", 3, 3000));
}

TEST(HiddenRequestDetector, OutsideWindowIsNotProbe) {
  server::HiddenRequestDetector detector;
  detector.setWindowMs(5'000);
  detector.looksLikeProbe("/", 3, 1000);
  EXPECT_FALSE(detector.looksLikeProbe("/", 0, 10'000));
}

TEST(HiddenRequestDetector, ProbeDoesNotUpdateBaseline) {
  server::HiddenRequestDetector detector;
  detector.looksLikeProbe("/", 3, 1000);
  EXPECT_TRUE(detector.looksLikeProbe("/", 0, 2000));
  // A second probe shortly after must still compare against the genuine
  // request's cookie count (3), not the probe's (0).
  EXPECT_TRUE(detector.looksLikeProbe("/", 1, 2500));
}

TEST(HiddenRequestDetector, PathsAreIndependent) {
  server::HiddenRequestDetector detector;
  detector.looksLikeProbe("/a", 3, 1000);
  EXPECT_FALSE(detector.looksLikeProbe("/b", 0, 1500));
}

// --- the attack ---------------------------------------------------------------

server::SiteSpec evasiveTrackerSpec(const std::string& domain) {
  server::SiteSpec spec;
  spec.label = "EV";
  spec.domain = domain;
  spec.category = "business";
  spec.seed = 61;
  spec.containerTrackers = 2;  // pure trackers the operator wants kept
  return spec;
}

std::shared_ptr<server::WebSite> buildEvasiveSite(
    const server::SiteSpec& spec, util::SimClock& clock,
    server::EvasionBehavior** evasionOut) {
  auto site = server::buildSite(spec, clock);
  auto evasion = std::make_unique<server::EvasionBehavior>();
  *evasionOut = evasion.get();
  site->addBehavior(std::move(evasion));
  return site;
}

TEST(Evasion, DefeatsVanillaCookiePicker) {
  SimWorld world;
  const auto spec = evasiveTrackerSpec("evil.example");
  server::EvasionBehavior* evasion = nullptr;
  world.network.registerHost(
      spec.domain, buildEvasiveSite(spec, world.clock, &evasion));

  CookiePicker picker(world.browser);
  for (int i = 0; i < 6; ++i) {
    picker.browse("http://evil.example/page" + std::to_string(i + 1));
  }
  EXPECT_GT(evasion->probesDetected(), 0u);
  // The cloaked probe responses made the useless trackers look useful —
  // exactly the evasion the paper describes.
  int marked = 0;
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    if (record->useful) ++marked;
  }
  EXPECT_EQ(marked, 2);
}

TEST(Evasion, ConsistencyReprobeRestoresCorrectVerdict) {
  SimWorld world;
  const auto spec = evasiveTrackerSpec("evil.example");
  server::EvasionBehavior* evasion = nullptr;
  world.network.registerHost(
      spec.domain, buildEvasiveSite(spec, world.clock, &evasion));

  CookiePickerConfig config;
  config.forcum.consistencyReprobe = true;
  CookiePicker picker(world.browser, config);
  bool sawInconsistency = false;
  for (int i = 0; i < 6; ++i) {
    const auto report =
        picker.browse("http://evil.example/page" + std::to_string(i + 1));
    sawInconsistency |= report.inconsistentHiddenCopies;
  }
  EXPECT_TRUE(sawInconsistency);
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    EXPECT_FALSE(record->useful) << record->key.name;
  }
}

TEST(Evasion, ReprobeDoesNotBreakLegitimateDetection) {
  // On an honest site with a genuinely useful cookie, the two hidden copies
  // agree and the marking proceeds normally.
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "OK";
  spec.domain = "honest.example";
  spec.category = "arts";
  spec.seed = 62;
  spec.preferenceCookies = 1;
  spec.preferenceIntensity = 2;
  world.addSite(spec);

  CookiePickerConfig config;
  config.forcum.consistencyReprobe = true;
  CookiePicker picker(world.browser, config);
  for (int i = 0; i < 5; ++i) {
    picker.browse("http://honest.example/page" + std::to_string(i + 1));
  }
  const auto records =
      world.browser.jar().persistentCookiesForHost(spec.domain);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0]->useful);
}

TEST(Evasion, ReprobeVetoesLayoutNoiseDetections) {
  // Side benefit: S1/S10/S27-style dynamics also tend to fail the
  // hidden-vs-hidden agreement check. One reprobe cannot eliminate these
  // false positives (both hidden copies may land on the calm variant while
  // the regular copy was shuffled — quantified in bench_evasion), but the
  // veto must demonstrably fire on dynamic pages.
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "NZ";
  spec.domain = "noisy.example";
  spec.category = "news";
  spec.seed = 63;
  spec.containerTrackers = 2;
  spec.layoutNoiseProbability = 0.45;
  world.addSite(spec);

  CookiePickerConfig config;
  config.forcum.consistencyReprobe = true;
  CookiePicker picker(world.browser, config);
  int vetoes = 0;
  int falseMarks = 0;
  for (int i = 0; i < 20; ++i) {
    const auto report =
        picker.browse("http://noisy.example/page" + std::to_string(i % 8 + 1));
    if (report.inconsistentHiddenCopies) ++vetoes;
    falseMarks += static_cast<int>(report.newlyMarked.size());
  }
  EXPECT_GT(vetoes, 0);
  // Every vetoed view would have been a false marking in vanilla mode.
  EXPECT_LE(falseMarks, 2);
}

// --- Bisection group testing -----------------------------------------------------

TEST(Bisection, IsolatesUsefulCookieWithoutCoMarking) {
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "B";
  spec.domain = "bisect.example";
  spec.category = "science";
  spec.seed = 64;
  spec.preferenceCookies = 1;
  spec.preferenceIntensity = 2;
  spec.containerTrackers = 7;  // 8 cookies total, 1 useful
  world.addSite(spec);

  CookiePickerConfig config;
  config.forcum.groupMode = CookieGroupMode::Bisection;
  CookiePicker picker(world.browser, config);
  for (int i = 0; i < 16; ++i) {
    picker.browse("http://bisect.example/page" + std::to_string(i % 8 + 1));
  }
  int marked = 0;
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    if (record->useful) {
      ++marked;
      EXPECT_EQ(record->key.name, "prefstyle");
    }
  }
  EXPECT_EQ(marked, 1);
}

TEST(Bisection, ConvergesFasterThanPerCookie) {
  // Worst case for round-robin: the single useful cookie ("zpref") sorts
  // *after* all 15 trackers, so PerCookie only reaches it on its 16th test.
  // Bisection pins it down in O(log n) difference-bearing views.
  auto viewsToMark = [](CookieGroupMode mode) {
    SimWorld world;
    server::SiteConfig siteConfig;
    siteConfig.domain = "race.example";
    siteConfig.title = "Race";
    siteConfig.category = "science";
    siteConfig.seed = 65;
    auto site = std::make_shared<server::WebSite>(siteConfig, world.clock);
    site->addBehavior(
        std::make_unique<server::PreferenceCookieBehavior>("zpref", 2));
    for (int i = 0; i < 15; ++i) {
      site->addBehavior(std::make_unique<server::TrackingCookieBehavior>(
          "trk" + std::to_string(i)));
    }
    world.network.registerHost(siteConfig.domain, site);

    CookiePickerConfig config;
    config.forcum.groupMode = mode;
    CookiePicker picker(world.browser, config);
    for (int i = 1; i <= 64; ++i) {
      const auto report = picker.browse("http://race.example/page" +
                                        std::to_string(i % 8 + 1));
      if (!report.newlyMarked.empty()) return i;
    }
    return 9999;
  };
  const int bisectionViews = viewsToMark(CookieGroupMode::Bisection);
  const int perCookieViews = viewsToMark(CookieGroupMode::PerCookie);
  EXPECT_LT(bisectionViews, perCookieViews);
  EXPECT_LE(bisectionViews, 12);  // ~1 no-op + 1 full + log2(16) splits
  EXPECT_GE(perCookieViews, 16);  // had to walk the whole tracker list
}

TEST(Bisection, MultipleUsefulCookiesAllFound) {
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "B2";
  spec.domain = "multi.example";
  spec.category = "home";
  spec.seed = 66;
  spec.preferenceCookies = 2;
  spec.containerTrackers = 6;
  world.addSite(spec);

  CookiePickerConfig config;
  config.forcum.groupMode = CookieGroupMode::Bisection;
  CookiePicker picker(world.browser, config);
  for (int i = 0; i < 24; ++i) {
    picker.browse("http://multi.example/page" + std::to_string(i % 8 + 1));
  }
  int marked = 0;
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    if (record->useful) {
      ++marked;
      EXPECT_TRUE(record->key.name.starts_with("pref"))
          << record->key.name;
    }
  }
  EXPECT_EQ(marked, 2);
}

TEST(Bisection, TrackerOnlySiteStabilizesUnmarked) {
  SimWorld world;
  server::SiteSpec spec;
  spec.label = "B3";
  spec.domain = "flat.example";
  spec.category = "games";
  spec.seed = 67;
  spec.containerTrackers = 4;
  world.addSite(spec);

  CookiePickerConfig config;
  config.forcum.groupMode = CookieGroupMode::Bisection;
  config.forcum.stableViewThreshold = 6;
  CookiePicker picker(world.browser, config);
  for (int i = 0; i < 12; ++i) {
    picker.browse("http://flat.example/page" + std::to_string(i % 8 + 1));
  }
  EXPECT_FALSE(picker.forcum().isTrainingActive(spec.domain));
  for (const cookies::CookieRecord* record :
       world.browser.jar().persistentCookiesForHost(spec.domain)) {
    EXPECT_FALSE(record->useful);
  }
}

}  // namespace
}  // namespace cookiepicker
