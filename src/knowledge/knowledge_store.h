// KnowledgeStore — durable persistence for a KnowledgeBase, layered on the
// durable store's per-host WAL + snapshot shards.
//
// Each site's knowledge lives in its own shard (same directory layout,
// framing, checksums, torn-tail and crash semantics as the session store —
// see store/store.h), holding KnowledgeSite records: the site's full
// canonical serializeLine, absolute-valued so replay is idempotent and the
// newest record simply wins. `attach` replays every shard in the directory
// into the base, then arms the base's persist hook so every later merge /
// demotion appends through the WAL — `cookiepicker serve --knowledge-dir`
// restarts with everything the crowd ever learned.
#pragma once

#include <cstddef>
#include <mutex>
#include <set>
#include <string>

#include "knowledge/knowledge_base.h"
#include "store/store.h"

namespace cookiepicker::knowledge {

class KnowledgeStore {
 public:
  explicit KnowledgeStore(std::string directory);
  KnowledgeStore(const KnowledgeStore&) = delete;
  KnowledgeStore& operator=(const KnowledgeStore&) = delete;

  // Replays every shard under the directory into `base` (loading is merging,
  // so a pre-populated base joins with what disk holds), then installs the
  // persist hook. The base must outlive this store or detach its hook first;
  // one store backs one base at a time.
  void attach(KnowledgeBase& base);

  // Sites replayed from disk by the last attach().
  std::size_t sitesLoaded() const { return sitesLoaded_; }

  const std::string& directory() const { return directory_; }

 private:
  // The shard for `host`, with its append session started (resume, so prior
  // records survive across process lifetimes).
  store::HostStore* writableShard(const std::string& host);

  std::string directory_;
  store::StateStore store_;
  std::mutex mutex_;
  std::set<std::string> sessionStarted_;
  std::size_t sitesLoaded_ = 0;
};

}  // namespace cookiepicker::knowledge
