# Empty compiler generated dependencies file for cp_browser.
# This may be replaced when dependencies are built.
