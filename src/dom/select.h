// Small CSS-style selector engine over dom::Node trees.
//
// Supports the practical subset that tests, behaviors, and downstream
// analysis code need:
//   * simple selectors:  tag, *, .class, #id, [attr], [attr=value],
//     and compounds thereof (e.g. "div.sidebar[role=nav]");
//   * combinators: descendant (whitespace) and child (>);
//   * selector groups separated by commas.
//
// No pseudo-classes; matching is case-sensitive for classes/ids/values and
// case-insensitive for tag and attribute names (as HTML is).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dom/node.h"

namespace cookiepicker::dom {

// All elements under `root` (including root itself) matching the selector,
// in preorder. Throws std::invalid_argument on selector syntax errors.
std::vector<const Node*> select(const Node& root,
                                std::string_view selector);
std::vector<Node*> select(Node& root, std::string_view selector);

// First match or nullptr.
const Node* selectFirst(const Node& root, std::string_view selector);
Node* selectFirst(Node& root, std::string_view selector);

// Whether `node` itself matches (ancestor combinators are evaluated against
// its real ancestors).
bool matches(const Node& node, std::string_view selector);

}  // namespace cookiepicker::dom
