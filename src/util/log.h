// Minimal leveled logger.
//
// The library itself is silent by default (Error threshold); examples and
// debugging sessions can raise verbosity. Thread-safe: the threshold is an
// atomic and the sink serializes writes under a mutex, so fleet workers
// logging concurrently interleave whole lines, never bytes. (The original
// single-threaded design predates the PR-1 fleet.) A worker thread may tag
// itself with `setThreadWorkerIndex`; tagged lines render as
// "[INFO] [w3] message" so fleet logs attribute to the worker that wrote
// them.
#pragma once

#include <sstream>
#include <string>

namespace cookiepicker::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

class Logger {
 public:
  static LogLevel threshold();
  static void setThreshold(LogLevel level);
  static void write(LogLevel level, const std::string& message);
  static const char* levelName(LogLevel level);

  // Optional per-thread tag included in log lines (fleet worker index).
  // Negative clears the tag. Thread-local: each worker tags itself.
  static void setThreadWorkerIndex(int workerIndex);
  static int threadWorkerIndex();
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cookiepicker::util

#define CP_LOG(level)                                              \
  if (static_cast<int>(level) <                                    \
      static_cast<int>(cookiepicker::util::Logger::threshold())) { \
  } else                                                           \
    cookiepicker::util::detail::LogLine(level)

#define CP_LOG_DEBUG CP_LOG(cookiepicker::util::LogLevel::Debug)
#define CP_LOG_INFO CP_LOG(cookiepicker::util::LogLevel::Info)
#define CP_LOG_WARN CP_LOG(cookiepicker::util::LogLevel::Warn)
#define CP_LOG_ERROR CP_LOG(cookiepicker::util::LogLevel::Error)
