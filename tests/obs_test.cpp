// Flight-recorder tests: metrics registry mechanics (sharded counters,
// gauge merge policies, log2 histograms), thread-local sink routing, the
// audit-trail JSONL round trip, the 1-vs-8-worker determinism of the
// deterministic metrics and audit bytes, and the guarantee that the PR-2
// detection hot path still allocates nothing with instrumentation enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "browser/browser.h"
#include "core/decision.h"
#include "fleet/fleet.h"
#include "net/network.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "server/generator.h"
#include "test_support.h"
#include "util/clock.h"

// --- allocation accounting ----------------------------------------------------
// Same global operator-new funnel the hot-path benchmark uses; the
// zero-allocation guard below snapshots the counters around a measured loop.

namespace {
std::atomic<std::uint64_t> g_allocBytes{0};
std::atomic<std::uint64_t> g_allocCalls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocBytes.fetch_add(size, std::memory_order_relaxed);
  g_allocCalls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Sanitizers interpose their own allocator, so byte accounting through the
// override above is not meaningful under them.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CP_OBS_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CP_OBS_TEST_SANITIZED 1
#endif
#endif

namespace cookiepicker {
namespace {

// --- histograms --------------------------------------------------------------

TEST(ObsHistogram, BucketIndexBounds) {
  // Bucket 0 is "< 1 us"; bucket i >= 1 covers [2^(i-1), 2^i) us.
  EXPECT_EQ(obs::histogramBucketIndex(0), 0u);
  EXPECT_EQ(obs::histogramBucketIndex(1023), 0u);       // 1023 ns < 1 us
  EXPECT_EQ(obs::histogramBucketIndex(1024), 1u);       // exactly 1 us
  EXPECT_EQ(obs::histogramBucketIndex(2047), 1u);       // < 2 us
  EXPECT_EQ(obs::histogramBucketIndex(2048), 2u);       // 2 us
  EXPECT_EQ(obs::histogramBucketIndex(1024 * 1024), 11u);  // 1 ms = 2^10 us
  // The last bucket is open-ended: nothing indexes past it.
  EXPECT_EQ(obs::histogramBucketIndex(~std::uint64_t{0}),
            obs::kHistogramBuckets - 1);
}

TEST(ObsHistogram, BucketUpperBoundsIncrease) {
  double previous = 0.0;
  for (std::size_t bucket = 0; bucket < obs::kHistogramBuckets; ++bucket) {
    const double upper = obs::histogramBucketUpperMs(bucket);
    EXPECT_GT(upper, previous) << "bucket " << bucket;
    previous = upper;
  }
  // Bucket 0's upper bound is one binary microsecond (1024 ns).
  EXPECT_DOUBLE_EQ(obs::histogramBucketUpperMs(0), 1024.0 / 1e6);
  EXPECT_DOUBLE_EQ(obs::histogramBucketUpperMs(1), 2048.0 / 1e6);
}

TEST(ObsHistogram, MergeAddsAndPercentilesMatchBuckets) {
  obs::MetricsRegistry registry;
  // Nine fast records (~2 us) and one slow one (~1 ms): p50 lands in the
  // 2 us bucket, p99 in the 1 ms bucket.
  for (int i = 0; i < 9; ++i) {
    registry.recordTimerNs(obs::Timer::RstmDp, 1500);
  }
  registry.recordTimerNs(obs::Timer::RstmDp, 1000000);
  const obs::HistogramSnapshot histogram =
      registry.snapshot().timer(obs::Timer::RstmDp);
  EXPECT_EQ(histogram.count, 10u);
  EXPECT_EQ(histogram.sumNs, 9u * 1500u + 1000000u);
  EXPECT_DOUBLE_EQ(
      histogram.percentileMs(50.0),
      obs::histogramBucketUpperMs(obs::histogramBucketIndex(1500)));
  EXPECT_DOUBLE_EQ(
      histogram.percentileMs(99.0),
      obs::histogramBucketUpperMs(obs::histogramBucketIndex(1000000)));

  obs::HistogramSnapshot merged = histogram;
  merged.merge(histogram);
  EXPECT_EQ(merged.count, 20u);
  EXPECT_EQ(merged.sumNs, 2u * histogram.sumNs);
  for (std::size_t bucket = 0; bucket < obs::kHistogramBuckets; ++bucket) {
    EXPECT_EQ(merged.buckets[bucket], 2u * histogram.buckets[bucket]);
  }
}

// --- registry ----------------------------------------------------------------

TEST(ObsRegistry, ConcurrentCountersSumExactly) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry]() {
      for (int i = 0; i < kPerThread; ++i) {
        registry.add(obs::Counter::Decisions);
        registry.add(obs::Counter::NetworkBytes, 3);
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter(obs::Counter::Decisions),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snapshot.counter(obs::Counter::NetworkBytes),
            static_cast<std::uint64_t>(kThreads) * kPerThread * 3);
}

TEST(ObsRegistry, GaugeMergePolicies) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.gaugeSet(obs::Gauge::JarCookies, 5);
  a.gaugeMax(obs::Gauge::RstmArenaCells, 100);
  a.gaugeMax(obs::Gauge::RstmArenaCells, 40);  // high-water stays 100
  b.gaugeSet(obs::Gauge::JarCookies, 7);
  b.gaugeMax(obs::Gauge::RstmArenaCells, 60);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  // JarCookies sums across sessions (total cookies held fleet-wide);
  // RstmArenaCells takes the max (fleet-wide high-water mark).
  EXPECT_EQ(merged.gauge(obs::Gauge::JarCookies), 12);
  EXPECT_EQ(merged.gauge(obs::Gauge::RstmArenaCells), 100);
}

TEST(ObsRegistry, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry registry(/*enabled=*/false);
  registry.add(obs::Counter::Decisions);
  registry.gaugeSet(obs::Gauge::JarCookies, 9);
  registry.recordTimerNs(obs::Timer::Decision, 5000);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter(obs::Counter::Decisions), 0u);
  EXPECT_EQ(snapshot.gauge(obs::Gauge::JarCookies), 0);
  EXPECT_EQ(snapshot.timer(obs::Timer::Decision).count, 0u);
}

TEST(ObsRecorder, ScopedSessionRoutesAndNests) {
  obs::MetricsRegistry outer;
  obs::MetricsRegistry inner;
  obs::AuditTrail trail;
  {
    obs::ScopedObsSession outerScope(&outer, &trail);
    EXPECT_EQ(obs::activeMetrics(), &outer);
    EXPECT_EQ(obs::activeAudit(), &trail);
    obs::count(obs::Counter::PagesVisited);
    {
      obs::ScopedObsSession innerScope(&inner, nullptr);
      EXPECT_EQ(obs::activeMetrics(), &inner);
      EXPECT_EQ(obs::activeAudit(), nullptr);
      obs::count(obs::Counter::PagesVisited);
    }
    EXPECT_EQ(obs::activeMetrics(), &outer);  // restored on scope exit
    obs::count(obs::Counter::PagesVisited);
  }
  EXPECT_EQ(outer.snapshot().counter(obs::Counter::PagesVisited), 2u);
  EXPECT_EQ(inner.snapshot().counter(obs::Counter::PagesVisited), 1u);
  // Sinks installed on this thread are invisible to others.
  obs::ScopedObsSession scope(&outer, nullptr);
  std::thread([]() { EXPECT_EQ(obs::activeAudit(), nullptr); }).join();
}

// --- audit trail -------------------------------------------------------------

obs::AuditRecord sampleRecord() {
  obs::AuditRecord record;
  record.host = "s1.example";
  record.url = "http://s1.example/page0?q=\"quoted\"\\path";
  record.view = 3;
  record.testedGroup = {"sess|s1.example|/", "trk\t1|s1.example|/a"};
  record.treeSim = 1.0 / 3.0;  // exercises shortest-round-trip doubles
  record.textSim = 0.85;
  record.treeThreshold = 0.85;
  record.textThreshold = 0.85;
  record.level = 5;
  record.mode = "both";
  record.branch = obs::figure5Branch(true, true);
  record.skippedReason = "hidden-degraded:connection dropped";
  record.causedByCookies = true;
  record.reprobeRan = true;
  record.reprobeVetoed = false;
  record.reprobeTreeSim = 0.99;
  record.reprobeTextSim = 1.0;
  record.hiddenLatencyMs = 2123.003163775879;
  record.hiddenAttempts = 3;
  record.viewsTotal = 3;
  record.hiddenRequests = 2;
  record.quietBefore = 1;
  record.quietAfter = 0;
  record.trainingActiveAfter = true;
  record.marked = {"sess|s1.example|/"};
  record.evidenceStructureRegular = {"body>div>main (x2)"};
  record.evidenceStructureHidden = {};
  record.evidenceTextRegular = {"body:div:Welcome back\nuser"};
  record.evidenceTextHidden = {"body:div:Please log in \x01"};
  return record;
}

TEST(ObsAudit, JsonLineRoundTripsByteForByte) {
  obs::AuditTrail trail;
  obs::AuditRecord record = sampleRecord();
  trail.append(record);
  EXPECT_EQ(record.seq, 1u);

  const std::string line =
      trail.jsonl().substr(0, trail.jsonl().size() - 1);  // strip '\n'
  const std::optional<obs::AuditRecord> parsed =
      obs::parseAuditRecordLine(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->toJsonLine(), line);
  EXPECT_EQ(parsed->host, record.host);
  EXPECT_EQ(parsed->url, record.url);
  EXPECT_EQ(parsed->testedGroup, record.testedGroup);
  EXPECT_EQ(parsed->treeSim, record.treeSim);  // exact, not approximate
  EXPECT_EQ(parsed->hiddenLatencyMs, record.hiddenLatencyMs);
  EXPECT_EQ(parsed->hiddenAttempts, record.hiddenAttempts);
  EXPECT_EQ(parsed->skippedReason, record.skippedReason);
  EXPECT_EQ(parsed->evidenceTextHidden, record.evidenceTextHidden);
  EXPECT_EQ(parsed->marked, record.marked);
}

TEST(ObsAudit, SequenceNumbersArePerTrail) {
  obs::AuditTrail trail;
  obs::AuditRecord first = sampleRecord();
  obs::AuditRecord second = sampleRecord();
  trail.append(first);
  trail.append(second);
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(second.seq, 2u);
  EXPECT_EQ(trail.recordCount(), 2u);
}

TEST(ObsAudit, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parseAuditRecordLine("").has_value());
  EXPECT_FALSE(obs::parseAuditRecordLine("not json").has_value());
  EXPECT_FALSE(obs::parseAuditRecordLine("{}").has_value());
  const std::string line = sampleRecord().toJsonLine();
  // Trailing bytes and unknown keys are errors: the format is closed.
  EXPECT_FALSE(obs::parseAuditRecordLine(line + "x").has_value());
  std::string withUnknown = line;
  withUnknown.insert(withUnknown.size() - 1, ",\"bogus\":1");
  EXPECT_FALSE(obs::parseAuditRecordLine(withUnknown).has_value());
  EXPECT_TRUE(obs::parseAuditRecordLine(line).has_value());
}

TEST(ObsAudit, Figure5HelpersMatchDecisionTable) {
  EXPECT_STREQ(obs::figure5Branch(true, true), "both-differ");
  EXPECT_STREQ(obs::figure5Branch(true, false), "tree-only-differs");
  EXPECT_STREQ(obs::figure5Branch(false, true), "text-only-differs");
  EXPECT_STREQ(obs::figure5Branch(false, false), "neither-differs");

  EXPECT_TRUE(obs::figure5Verdict("both", true, true));
  EXPECT_FALSE(obs::figure5Verdict("both", true, false));
  EXPECT_TRUE(obs::figure5Verdict("tree-only", true, false));
  EXPECT_FALSE(obs::figure5Verdict("tree-only", false, true));
  EXPECT_TRUE(obs::figure5Verdict("text-only", false, true));
  EXPECT_TRUE(obs::figure5Verdict("either", true, false));
  EXPECT_FALSE(obs::figure5Verdict("either", false, false));
  EXPECT_FALSE(obs::figure5Verdict("unknown-mode", true, true));
}

// --- fleet determinism -------------------------------------------------------

fleet::FleetReport runObservedFleet(
    const std::vector<server::SiteSpec>& roster, int workers, int views) {
  testsupport::FleetRunOptions options;
  options.workers = workers;
  options.viewsPerHost = views;
  options.seed = 4242;
  options.collectObservability = true;
  return testsupport::runMeasurementFleet(roster, options);
}

TEST(ObsFleetDeterminism, MetricsAndAuditIdenticalForOneVsEightWorkers) {
  const auto roster = server::measurementRoster(64, 21);
  const fleet::FleetReport serial = runObservedFleet(roster, 1, 4);
  const fleet::FleetReport parallel = runObservedFleet(roster, 8, 4);

  // The deterministic half of the flight recorder obeys the same invariant
  // as serializeState(): byte-identical for any worker count — merged and
  // per host.
  EXPECT_EQ(serial.mergedMetrics().deterministicJson(),
            parallel.mergedMetrics().deterministicJson());
  EXPECT_EQ(serial.auditJsonl(), parallel.auditJsonl());
  ASSERT_EQ(serial.hosts.size(), parallel.hosts.size());
  for (std::size_t i = 0; i < serial.hosts.size(); ++i) {
    EXPECT_EQ(serial.hosts[i].metrics.deterministicJson(),
              parallel.hosts[i].metrics.deterministicJson())
        << roster[i].domain;
    EXPECT_EQ(serial.hosts[i].auditJsonl, parallel.hosts[i].auditJsonl)
        << roster[i].domain;
  }
  // And the instrumented run still upholds the original state invariant.
  EXPECT_EQ(serial.serializeState(), parallel.serializeState());

  // Sanity: the recorder actually recorded.
  const obs::MetricsSnapshot merged = serial.mergedMetrics();
  EXPECT_EQ(merged.counter(obs::Counter::PagesVisited), 64u * 4u);
  EXPECT_GT(merged.counter(obs::Counter::Decisions), 0u);
  EXPECT_EQ(merged.counter(obs::Counter::Decisions),
            merged.counter(obs::Counter::VerdictCookieCaused) +
                merged.counter(obs::Counter::VerdictNoDifference));
  EXPECT_GT(merged.timer(obs::Timer::PageVisit).count, 0u);
  EXPECT_FALSE(serial.auditJsonl().empty());
}

TEST(ObsFleetDeterminism, AuditRecordsRederiveTheirFigure5Branch) {
  const auto roster = server::measurementRoster(12, 33);
  const fleet::FleetReport report = runObservedFleet(roster, 4, 6);
  const std::string jsonl = report.auditJsonl();
  ASSERT_FALSE(jsonl.empty());

  std::size_t records = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::optional<obs::AuditRecord> record =
        obs::parseAuditRecordLine(
            std::string_view(jsonl).substr(start, end - start));
    ASSERT_TRUE(record.has_value()) << "unparseable audit line";
    // The branch and verdict must be pure functions of the recorded
    // similarities — that is what makes the trail auditable offline.
    const bool treeDiffers = record->treeSim <= record->treeThreshold;
    const bool textDiffers = record->textSim <= record->textThreshold;
    EXPECT_EQ(record->branch, obs::figure5Branch(treeDiffers, textDiffers));
    EXPECT_EQ(record->causedByCookies,
              obs::figure5Verdict(record->mode, treeDiffers, textDiffers));
    // Marking requires the verdict to have survived the re-probe.
    if (!record->marked.empty()) {
      EXPECT_TRUE(record->causedByCookies && !record->reprobeVetoed);
      for (const std::string& key : record->marked) {
        EXPECT_NE(std::find(record->testedGroup.begin(),
                            record->testedGroup.end(), key),
                  record->testedGroup.end())
            << "marked a cookie outside the tested group";
      }
    }
    ++records;
    start = end + 1;
  }
  EXPECT_GT(records, 0u);
}

// --- hot-path allocation guard -----------------------------------------------

TEST(ObsHotPath, DetectionStepAllocatesNothingWithInstrumentationOn) {
#ifdef CP_OBS_TEST_SANITIZED
  GTEST_SKIP() << "allocation accounting is not meaningful under sanitizers";
#else
  // Build one regular/hidden snapshot pair the way FORCUM does.
  util::SimClock serverClock;
  net::Network network(7);
  server::SiteSpec spec = server::makeGenericSpec("Obs", "obs.example", 7);
  network.registerHost(spec.domain, server::buildSite(spec, serverClock));
  util::SimClock clock;
  browser::Browser browser(network, clock);
  browser.visit("http://obs.example/page0");
  browser.visit("http://obs.example/page1");
  const browser::PageView view = browser.visit("http://obs.example/page0");
  const browser::HiddenFetchResult hidden = browser.hiddenFetch(
      view, [](const cookies::CookieRecord&) { return true; });
  ASSERT_NE(view.snapshot, nullptr);
  ASSERT_NE(hidden.snapshot, nullptr);

  obs::MetricsRegistry metrics;
  obs::AuditTrail audit;
  obs::ScopedObsSession scope(&metrics, &audit);
  core::DetectionScratch scratch;
  const core::DecisionConfig config;
  // Warm pass: grows the arena/scratch to working-set size.
  for (int i = 0; i < 4; ++i) {
    core::decideCookieUsefulness(*view.snapshot, *hidden.snapshot, scratch,
                                 config);
  }

  const std::uint64_t callsBefore =
      g_allocCalls.load(std::memory_order_relaxed);
  const std::uint64_t bytesBefore =
      g_allocBytes.load(std::memory_order_relaxed);
  constexpr int kSteps = 64;
  for (int i = 0; i < kSteps; ++i) {
    core::decideCookieUsefulness(*view.snapshot, *hidden.snapshot, scratch,
                                 config);
  }
  EXPECT_EQ(g_allocCalls.load(std::memory_order_relaxed), callsBefore)
      << "instrumented hot path allocated";
  EXPECT_EQ(g_allocBytes.load(std::memory_order_relaxed), bytesBefore);
  // The instrumentation recorded while staying allocation-free.
  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_GE(snapshot.counter(obs::Counter::Decisions),
            static_cast<std::uint64_t>(kSteps));
  EXPECT_GE(snapshot.timer(obs::Timer::Decision).count,
            static_cast<std::uint64_t>(kSteps));
#endif
}

}  // namespace
}  // namespace cookiepicker
