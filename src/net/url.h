// URL parsing and resolution (http/https subset).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cookiepicker::net {

class Url {
 public:
  Url() = default;

  // Parses an absolute URL ("http://host[:port]/path[?query]").
  // Returns nullopt if there is no scheme/host.
  static std::optional<Url> parse(std::string_view text);

  // Resolves `reference` against this base URL: absolute URLs pass through;
  // "//host/p", "/abs", "relative" and "?query" forms are supported.
  Url resolve(std::string_view reference) const;

  const std::string& scheme() const { return scheme_; }
  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }
  const std::string& path() const { return path_; }     // always begins '/'
  const std::string& query() const { return query_; }   // without '?'

  bool isSecure() const { return scheme_ == "https"; }
  bool hasDefaultPort() const {
    return (scheme_ == "http" && port_ == 80) ||
           (scheme_ == "https" && port_ == 443);
  }

  // "http://host[:port]" — the origin for same-origin checks.
  std::string origin() const;
  // Path plus "?query" — what goes on the HTTP request line.
  std::string pathWithQuery() const;
  std::string toString() const;

  bool operator==(const Url& other) const = default;

 private:
  std::string scheme_ = "http";
  std::string host_;
  std::uint16_t port_ = 80;
  std::string path_ = "/";
  std::string query_;
};

// Registrable-domain approximation: the last two labels of the host
// ("shop.example.com" → "example.com"). Good enough for the synthetic web,
// whose sites all use two-label registrable domains; real deployments need a
// public-suffix list.
std::string registrableDomain(std::string_view host);

// True if `host` is `domain` or a subdomain of it ("a.b.com" matches "b.com").
bool hostMatchesDomain(std::string_view host, std::string_view domain);

}  // namespace cookiepicker::net
