// DOM serialization helpers.
#pragma once

#include <string>

#include "dom/node.h"
#include "provenance/taint.h"

namespace cookiepicker::dom {

// Serializes a subtree back to HTML text. Not guaranteed to be byte-identical
// to the original input (the parser normalizes), but reparsing the output
// yields an equivalent tree — a property the test suite checks. Used by the
// Doppelganger baseline, which diffs serialized pages instead of trees.
std::string toHtml(const Node& root);

// Same serialization, byte for byte, additionally recording into `map` the
// output byte range of every subtree whose root carries taint labels. Nested
// tainted subtrees yield nested ranges; the map's normalization ORs them
// into the canonical disjoint form. The caller sets the map's label names.
std::string toHtmlWithProvenance(const Node& root,
                                 provenance::ProvenanceMap& map);

// Indented one-node-per-line dump ("element div", "text 'hello'") for
// debugging and golden tests.
std::string toDebugString(const Node& root);

// Compact structural signature: tag names and nesting only, e.g.
// "html(head(title),body(div(p,p)))". Text/comments are omitted. Useful for
// concise structural assertions in tests.
std::string structureSignature(const Node& root);

}  // namespace cookiepicker::dom
