// Fleet scaling: trains a 64-host roster at 1/2/4/8 workers and reports
// wall time, throughput, speedup over the single-worker run, and worker
// utilization — plus a byte-identity check that every worker count produced
// exactly the same serialized state (the fleet's determinism invariant).
//
// The run enables the Network's wall-latency emulation (a scaled-down real
// sleep per exchange), reproducing the regime of a real crawl: sessions
// spend most of their time waiting on servers, so extra workers win by
// overlapping waits, just as CookieGraph-style million-site crawls drive
// many browsers concurrently. Emulated waiting changes wall time only;
// results stay identical at every worker count.
#include <cstdio>

#include "fleet/fleet.h"
#include "net/network.h"
#include "server/generator.h"
#include "util/clock.h"
#include "util/stats.h"

int main() {
  using namespace cookiepicker;

  constexpr int kSites = 64;
  constexpr int kViewsPerHost = 6;
  constexpr std::uint64_t kSeed = 2007;
  // 4 ms of real wait per simulated second — a 2007-era multi-second page
  // load becomes tens of milliseconds of emulated network wait, which
  // dominates the few milliseconds of CPU a page view costs.
  constexpr double kWallLatencyScale = 1.0 / 250.0;

  std::printf("=== Fleet scaling: %d hosts, %d views each ===\n\n", kSites,
              kViewsPerHost);

  const auto roster = server::measurementRoster(kSites, kSeed);

  util::TextTable table({"workers", "wall s", "pages/s", "hidden req/s",
                         "speedup", "utilization"});
  double baselineWallMs = 0.0;
  std::string baselineState;
  bool deterministic = true;
  for (const int workers : {1, 2, 4, 8}) {
    // Fresh network + servers per run so latency streams and server-side
    // page dynamics restart identically.
    util::SimClock serverClock;
    net::Network network(kSeed);
    network.setWallLatencyScale(kWallLatencyScale);
    server::registerRoster(network, serverClock, roster);

    fleet::FleetConfig config;
    config.workers = workers;
    config.viewsPerHost = kViewsPerHost;
    config.seed = kSeed;
    config.picker.autoEnforce = true;
    fleet::TrainingFleet fleet(network, config);
    const fleet::FleetReport report = fleet.run(roster);

    if (workers == 1) {
      baselineWallMs = report.wallMs;
      baselineState = report.serializeState();
    } else if (report.serializeState() != baselineState) {
      deterministic = false;
    }
    table.addRow({std::to_string(workers),
                  util::TextTable::formatDouble(report.wallMs / 1000.0, 2),
                  util::TextTable::formatDouble(report.pagesPerSecond, 1),
                  util::TextTable::formatDouble(
                      report.hiddenRequestsPerSecond, 1),
                  util::TextTable::formatDouble(
                      baselineWallMs / report.wallMs, 2) + "x",
                  util::TextTable::formatDouble(
                      100.0 * report.workerUtilization, 0) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("serialized state identical across worker counts : %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATED");
  return deterministic ? 0 : 1;
}
