# Empty compiler generated dependencies file for cp_bench_support.
# This may be replaced when dependencies are built.
