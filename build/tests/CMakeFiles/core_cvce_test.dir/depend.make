# Empty dependencies file for core_cvce_test.
# This may be replaced when dependencies are built.
