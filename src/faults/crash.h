// Deterministic crash points for the durable state store.
//
// A CrashSchedule extends the fault engine's philosophy — every failure is a
// pure function of (seed, host) — from the network to the disk: it names the
// exact store operation at which the "process" dies. The store simulates the
// death by freezing the on-disk artifact exactly as a SIGKILL would leave it
// (a torn half-written record, a fsynced-but-unrenamed snapshot temp file,
// or simply nothing after the Nth append) and then dropping every later
// write across all shards. What recovery sees on disk is therefore a
// deterministic function of the schedule, which is what lets the
// crash-recovery property test replay hundreds of distinct crash points and
// demand byte-identical recovered results for every one of them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cookiepicker::faults {

enum class CrashMode : std::uint8_t {
  None = 0,
  // The Nth append writes only a prefix of its frame (a torn write), then
  // the process dies.
  TornAppend,
  // The Nth append completes durably, then the process dies before the
  // next write.
  KillAfterAppend,
  // The Nth snapshot compaction writes and fsyncs its temp file, then the
  // process dies before the atomic rename publishes it.
  KillMidRename,
};

const char* crashModeName(CrashMode mode);

// One crash point: die at operation number `at` (1-based) on `host`'s
// shard. For the append modes `at` counts appends since the shard was
// opened/reset; for KillMidRename it counts snapshot compactions.
struct CrashPoint {
  std::string host;
  CrashMode mode = CrashMode::None;
  std::uint64_t at = 0;
};

struct CrashSchedule {
  std::vector<CrashPoint> points;

  // First point for `host`, or nullptr.
  const CrashPoint* pointFor(std::string_view host) const;

  // Derives one crash point from `seed`: the dying shard is drawn from the
  // master stream, its mode and operation index from the host's forked
  // stream — the same per-host RNG idiom the network's fault engine uses,
  // so a crash schedule is reproducible from its seed alone. `maxAppends`
  // bounds the append index draw (use a value near the shard's expected
  // append count so crash points land mid-session, not past its end).
  static CrashSchedule fromSeed(std::uint64_t seed,
                                const std::vector<std::string>& hosts,
                                std::uint64_t maxAppends);
};

}  // namespace cookiepicker::faults
