// Per-request rendering context handed to site behaviors.
#pragma once

#include <map>
#include <string>

#include "net/http.h"
#include "provenance/taint.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cookiepicker::server {

struct RenderContext {
  const net::HttpRequest* request = nullptr;
  std::string path;  // request path, e.g. "/page3"
  // Cookies the client sent, name → value.
  std::map<std::string, std::string> cookies;
  util::SimClock* clock = nullptr;
  // Fresh stream per fetch: noise sources draw from this, so two fetches of
  // the same page (e.g. the regular and the hidden copy) see different ads.
  util::Pcg32* fetchRng = nullptr;
  // Stable stream per (site, path): the page skeleton draws from this, so
  // the page's *structure* is identical across fetches unless a behavior
  // deliberately changes it.
  util::Pcg32* stableRng = nullptr;
  // Set only when the client asked for provenance: behaviors label the DOM
  // they emit with the taint of every cookie they *read* (present or absent
  // — the branch itself is the information flow). Null on ordinary requests,
  // so the baseline render path is untouched.
  provenance::TaintRecorder* taint = nullptr;

  // Taint label for a cookie read; 0 when no recorder is attached, so
  // behaviors can mark unconditionally.
  provenance::LabelSet taintFor(const std::string& name) const {
    return taint == nullptr ? 0 : taint->labelFor(name);
  }

  bool hasCookie(const std::string& name) const {
    return cookies.contains(name);
  }
  std::string cookieValue(const std::string& name) const {
    const auto it = cookies.find(name);
    return it == cookies.end() ? std::string() : it->second;
  }
};

}  // namespace cookiepicker::server
