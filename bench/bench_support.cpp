#include "bench_support.h"

#include "browser/browser.h"

namespace cookiepicker::bench {

CampaignResult runCampaign(const std::vector<server::SiteSpec>& roster,
                           const CampaignOptions& options) {
  util::SimClock clock;
  net::Network network(options.networkSeed);
  browser::Browser browser(network, clock);
  core::CookiePicker picker(browser, options.picker);

  server::registerRoster(network, clock, roster);

  CampaignResult result;
  for (const server::SiteSpec& spec : roster) {
    SiteResult site;
    site.label = spec.label;
    site.domain = spec.domain;
    site.realUseful = spec.totalUseful();

    for (int view = 0; view < options.viewsPerSite; ++view) {
      const std::string path =
          view % spec.pageCount == 0
              ? "/"
              : "/page" + std::to_string(view % spec.pageCount);
      const core::ForcumStepReport report =
          picker.browse("http://" + spec.domain + path);
      if (report.hiddenRequestSent && report.decision.causedByCookies &&
          site.detectTreeSim < 0.0) {
        site.detectTreeSim = report.decision.treeSim;
        site.detectTextSim = report.decision.textSim;
      }
    }

    for (const cookies::CookieRecord* record :
         browser.jar().persistentCookiesForHost(spec.domain)) {
      ++site.persistent;
      if (record->useful) ++site.markedUseful;
    }
    const core::HostReport report = picker.report(spec.domain);
    site.hiddenRequests = report.hiddenRequests;
    site.avgDetectionMs = report.averageDetectionMs;
    site.avgDurationMs = report.averageDurationMs;
    result.sites.push_back(site);
  }
  result.recoveryPresses = picker.recovery().recoveryCount();
  return result;
}

}  // namespace cookiepicker::bench
