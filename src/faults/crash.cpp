#include "faults/crash.h"

#include "util/rng.h"

namespace cookiepicker::faults {

const char* crashModeName(CrashMode mode) {
  switch (mode) {
    case CrashMode::None:
      return "none";
    case CrashMode::TornAppend:
      return "torn-append";
    case CrashMode::KillAfterAppend:
      return "kill-after-append";
    case CrashMode::KillMidRename:
      return "kill-mid-rename";
  }
  return "none";
}

const CrashPoint* CrashSchedule::pointFor(std::string_view host) const {
  for (const CrashPoint& point : points) {
    if (point.host == host) return &point;
  }
  return nullptr;
}

CrashSchedule CrashSchedule::fromSeed(std::uint64_t seed,
                                      const std::vector<std::string>& hosts,
                                      std::uint64_t maxAppends) {
  CrashSchedule schedule;
  if (hosts.empty()) return schedule;
  util::Pcg32 master(seed, 0xc4a5c4a5c4a5c4a5ULL);
  const std::string& host =
      hosts[master.uniform(0, static_cast<std::uint32_t>(hosts.size() - 1))];
  util::Pcg32 stream = util::Pcg32(seed).fork(host);
  CrashPoint point;
  point.host = host;
  point.mode = static_cast<CrashMode>(1 + stream.uniform(0, 2));
  if (point.mode == CrashMode::KillMidRename) {
    // Snapshot ordinal: early compactions are the interesting ones.
    point.at = 1 + stream.uniform(0, 2);
  } else {
    const std::uint64_t bound = maxAppends == 0 ? 1 : maxAppends;
    point.at = 1 + stream.uniform(0, static_cast<std::uint32_t>(bound - 1));
  }
  schedule.points.push_back(std::move(point));
  return schedule;
}

}  // namespace cookiepicker::faults
