#include "html/parser.h"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "html/tokenizer.h"
#include "util/strings.h"

namespace cookiepicker::html {

namespace {

using dom::Node;

bool isWhitespaceOnly(std::string_view text) {
  return std::all_of(text.begin(), text.end(), [](char ch) {
    return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\f';
  });
}

// Should an open element `openTag` be implicitly closed when a start tag
// `incoming` arrives? This encodes the common HTML optional-end-tag rules.
bool impliesEndOf(const std::string& incoming, const std::string& openTag) {
  if (openTag == "p") return isBlockLevelTag(incoming);
  if (openTag == "li") return incoming == "li";
  if (openTag == "dt" || openTag == "dd") {
    return incoming == "dt" || incoming == "dd";
  }
  if (openTag == "option") {
    return incoming == "option" || incoming == "optgroup";
  }
  if (openTag == "td" || openTag == "th") {
    return incoming == "td" || incoming == "th" || incoming == "tr" ||
           incoming == "tbody" || incoming == "thead" || incoming == "tfoot";
  }
  if (openTag == "tr") {
    return incoming == "tr" || incoming == "tbody" || incoming == "thead" ||
           incoming == "tfoot";
  }
  if (openTag == "thead" || openTag == "tbody" || openTag == "tfoot") {
    return incoming == "tbody" || incoming == "thead" || incoming == "tfoot";
  }
  return false;
}

class TreeBuilder {
 public:
  explicit TreeBuilder(const ParseOptions& options) : options_(options) {
    document_ = Node::makeDocument();
  }

  std::unique_ptr<Node> build(std::string_view input) {
    Tokenizer tokenizer(input);
    while (true) {
      Token token = tokenizer.next();
      if (token.type == TokenType::EndOfFile) break;
      processToken(std::move(token));
    }
    // A page with no markup at all still gets the html/head/body skeleton,
    // mirroring what layout engines construct for any document.
    ensureBody();
    return std::move(document_);
  }

 private:
  void processToken(Token token) {
    switch (token.type) {
      case TokenType::Doctype:
        if (html_ == nullptr) {
          document_->appendChild(Node::makeDoctype(token.name));
        }
        break;
      case TokenType::Comment:
        insertionPoint().appendChild(Node::makeComment(token.text));
        break;
      case TokenType::Text:
        processText(std::move(token.text));
        break;
      case TokenType::StartTag:
        processStartTag(std::move(token));
        break;
      case TokenType::EndTag:
        processEndTag(token.name);
        break;
      case TokenType::EndOfFile:
        break;
    }
  }

  void processText(std::string text) {
    if (text.empty()) return;
    const bool whitespaceOnly = isWhitespaceOnly(text);
    if (whitespaceOnly) {
      if (body_ == nullptr) return;  // whitespace before body: always dropped
      if (options_.dropInterElementWhitespace && !insideRawTextElement() &&
          !insidePreformatted()) {
        return;
      }
    }
    if (body_ == nullptr && !insideHeadRawText()) ensureBody();
    Node& parent = insertionPoint();
    // Merge with a preceding text node so consecutive tokenizer text chunks
    // (split at entity boundaries) form one DOM text node.
    if (parent.childCount() > 0 &&
        parent.child(parent.childCount() - 1).isText()) {
      Node& last = parent.child(parent.childCount() - 1);
      last.setValue(last.value() + text);
      return;
    }
    parent.appendChild(Node::makeText(text));
  }

  void processStartTag(Token token) {
    const std::string& tag = token.name;

    if (tag == "html") {
      ensureHtml();
      mergeAttributes(*html_, token.attributes);
      return;
    }
    if (tag == "head") {
      ensureHead();
      mergeAttributes(*head_, token.attributes);
      return;
    }
    if (tag == "body") {
      ensureBody();
      mergeAttributes(*body_, token.attributes);
      return;
    }

    // Head-content placement applies only at head level: if some element is
    // still open (e.g. a <title> left open by a junk end tag), falling
    // through to the generic path keeps tree order equal to emission order,
    // which the streaming snapshot builder (html/stream_snapshot.h) relies
    // on — a head_ append here would insert *before* the open element's
    // pending children.
    if (body_ == nullptr && openElements_.empty() &&
        (isHeadContentTag(tag) || tag == "script")) {
      ensureHead();
      Node& element = head_->appendChild(Node::makeElement(tag));
      adoptAttributes(element, token.attributes);
      if (!isVoidElement(tag) && !token.selfClosing) {
        openElements_.push_back(&element);
      }
      return;
    }

    ensureBody();
    // Optional-end-tag handling: close open elements the incoming tag
    // implies an end for.
    while (!openElements_.empty() &&
           impliesEndOf(tag, openElements_.back()->name())) {
      openElements_.pop_back();
    }

    Node& element = insertionPoint().appendChild(Node::makeElement(tag));
    adoptAttributes(element, token.attributes);
    if (!isVoidElement(tag) && !token.selfClosing) {
      openElements_.push_back(&element);
    }
  }

  void processEndTag(const std::string& tag) {
    if (tag == "html" || tag == "body" || tag == "head") {
      // Close everything below the structural element.
      if (tag == "head") {
        while (!openElements_.empty() && openElements_.back() != head_ &&
               openElements_.back() != body_) {
          openElements_.pop_back();
        }
      }
      return;  // html/head/body stay conceptually open until EOF
    }
    // Find the nearest matching open element.
    for (std::size_t i = openElements_.size(); i > 0; --i) {
      if (openElements_[i - 1]->name() == tag) {
        openElements_.resize(i - 1);
        return;
      }
    }
    // No match: ignore the stray end tag (browser behaviour).
  }

  Node& insertionPoint() {
    if (!openElements_.empty()) return *openElements_.back();
    if (body_ != nullptr) return *body_;
    if (head_ != nullptr) return *head_;
    if (html_ != nullptr) return *html_;
    return *document_;
  }

  bool insideRawTextElement() const {
    return !openElements_.empty() && isRawTextTag(openElements_.back()->name());
  }

  bool insideHeadRawText() const {
    if (openElements_.empty()) return false;
    const std::string& tag = openElements_.back()->name();
    return tag == "title" || tag == "style" || tag == "script";
  }

  bool insidePreformatted() const {
    return std::any_of(
        openElements_.begin(), openElements_.end(),
        [](const Node* node) { return node->name() == "pre" ||
                                      node->name() == "textarea"; });
  }

  void ensureHtml() {
    if (html_ != nullptr) return;
    html_ = &document_->appendChild(Node::makeElement("html"));
  }

  void ensureHead() {
    ensureHtml();
    if (head_ != nullptr) return;
    head_ = &html_->appendChild(Node::makeElement("head"));
  }

  void ensureBody() {
    ensureHead();
    if (body_ != nullptr) return;
    // Anything still open at this point belonged to head content.
    openElements_.clear();
    body_ = &html_->appendChild(Node::makeElement("body"));
  }

  static void adoptAttributes(Node& element,
                              const std::vector<dom::Attribute>& attributes) {
    for (const dom::Attribute& attribute : attributes) {
      element.setAttribute(attribute.name, attribute.value);
    }
  }

  // For duplicate <html>/<body> tags: new attributes are added, existing
  // ones keep their first value.
  static void mergeAttributes(Node& element,
                              const std::vector<dom::Attribute>& attributes) {
    for (const dom::Attribute& attribute : attributes) {
      if (!element.hasAttribute(attribute.name)) {
        element.setAttribute(attribute.name, attribute.value);
      }
    }
  }

  ParseOptions options_;
  std::unique_ptr<Node> document_;
  Node* html_ = nullptr;
  Node* head_ = nullptr;
  Node* body_ = nullptr;
  std::vector<Node*> openElements_;
};

}  // namespace

bool isVoidElement(std::string_view tagName) {
  static const std::array<const char*, 14> kVoidTags = {
      "area",  "base",  "br",   "col",    "embed",  "hr",   "img",
      "input", "link",  "meta", "param",  "source", "track", "wbr"};
  return std::any_of(kVoidTags.begin(), kVoidTags.end(),
                     [&](const char* tag) { return tagName == tag; });
}

bool isHeadContentTag(std::string_view tagName) {
  return tagName == "title" || tagName == "meta" || tagName == "link" ||
         tagName == "base" || tagName == "style";
}

bool isBlockLevelTag(std::string_view tagName) {
  static const std::array<const char*, 24> kBlocks = {
      "address", "article", "aside",      "blockquote", "div",    "dl",
      "fieldset", "footer", "form",       "h1",         "h2",     "h3",
      "h4",       "h5",     "h6",         "header",     "hr",     "nav",
      "ol",       "p",      "pre",        "section",    "table",  "ul"};
  return std::any_of(kBlocks.begin(), kBlocks.end(),
                     [&](const char* tag) { return tagName == tag; });
}

std::unique_ptr<dom::Node> parseHtml(std::string_view input,
                                     const ParseOptions& options) {
  return TreeBuilder(options).build(input);
}

}  // namespace cookiepicker::html
