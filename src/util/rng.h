// Deterministic pseudo-random number generation for the simulation.
//
// Everything in this repository that needs randomness (site generation, page
// dynamics, latency sampling, think time) draws from a seeded Pcg32 so every
// experiment is exactly reproducible from its seed. We implement PCG-XSH-RR
// 64/32 (O'Neill, 2014) directly: it is tiny, fast, and statistically far
// better than std::minstd_rand while being cheaper than std::mt19937.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace cookiepicker::util {

class Pcg32 {
 public:
  using result_type = std::uint32_t;

  // Streams with identical seeds but distinct sequence selectors are
  // statistically independent; we use that to give every site / noise source
  // its own substream.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t sequence = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (sequence << 1U) | 1U;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  // Unbiased integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint32_t uniform(std::uint32_t lo, std::uint32_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Standard normal via Box-Muller (no caching; simplicity over speed).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Log-normal: exp(N(mu, sigma)). Used by the latency and think-time models.
  double logNormal(double mu, double sigma);

  // True with probability p (clamped to [0,1]).
  bool chance(double p);

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[uniform(0, static_cast<std::uint32_t>(items.size() - 1))];
  }

  // Derive a child generator whose stream is independent of this one.
  // `tag` ties the substream to a stable identity (e.g. a domain name).
  Pcg32 fork(std::string_view tag);

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

// FNV-1a 64-bit hash; used to derive stable per-name RNG substreams and to
// fingerprint serialized pages in tests.
std::uint64_t fnv1a64(std::string_view text);

}  // namespace cookiepicker::util
