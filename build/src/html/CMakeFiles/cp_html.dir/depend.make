# Empty dependencies file for cp_html.
# This may be replaced when dependencies are built.
