#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace cookiepicker::obs {

namespace {

constexpr const char* kCounterNames[kCounterCount] = {
    "pages_visited",
    "redirects_followed",
    "subresource_fetches",
    "hidden_fetches",
    "network_requests",
    "network_bytes",
    "network_failures_injected",
    "replay_misses",
    "jar_evictions",
    "rstm_evaluations",
    "cvce_extractions",
    "cvce_merges",
    "decisions",
    "verdicts_cookie_caused",
    "verdicts_no_difference",
    "verdicts_vetoed",
    "cookies_marked_useful",
    "hosts_enforced",
    "fault_server_errors",
    "fault_connection_drops",
    "fault_timeouts",
    "fault_truncated_bodies",
    "fault_corrupted_set_cookies",
    "fault_slow_drips",
    "hidden_fetch_retries",
    "hidden_fetch_exhausted",
    "hidden_retry_budget_exhausted",
    "forcum_steps_skipped",
    "store_appends",
    "store_append_bytes",
    "store_compactions",
    "store_snapshot_bytes",
    "store_snapshots_loaded",
    "store_records_recovered",
    "store_records_discarded",
    "store_shards_reset",
    "knowledge_hits",
    "knowledge_misses",
    "knowledge_demotions",
    "knowledge_marks_imported",
    "knowledge_merges",
    "serve_dispatches",
    "serve_connections_opened",
    "serve_reused_dispatches",
    "serve_retries_scheduled",
    "serve_requests_served",
    "serve_faults_injected",
    "serve_parse_errors",
    "attribution_steps",
    "attribution_nominated",
    "attribution_ambiguous",
    "attribution_confirm_strips",
    "attribution_confirmed",
    "attribution_fallbacks",
};

constexpr const char* kGaugeNames[kGaugeCount] = {
    "jar_cookies",
    "rstm_arena_cells",
};

constexpr GaugeMerge kGaugeMerges[kGaugeCount] = {
    GaugeMerge::Sum,  // jar_cookies
    GaugeMerge::Max,  // rstm_arena_cells
};

constexpr const char* kTimerNames[kTimerCount] = {
    "html_parse",
    "snapshot_build",
    "stream_build",
    "rstm_dp",
    "cvce_extract",
    "cvce_merge",
    "decision",
    "hidden_fetch",
    "page_visit",
    "forcum_step",
    "serve_dispatch",
};

// Shard choice: a stable per-thread index. Hashing the thread id once per
// thread keeps every counter increment a single relaxed fetch_add on a line
// no other worker is writing (kShards is a power of two).
std::size_t thisThreadShard() {
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (MetricsRegistry::kShards - 1);
  return shard;
}

void appendUint(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  out += buffer;
}

void appendInt(std::string& out, std::int64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  out += buffer;
}

void appendFixed(std::string& out, double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  out += buffer;
}

}  // namespace

const char* counterName(Counter counter) {
  return kCounterNames[static_cast<std::size_t>(counter)];
}

const char* gaugeName(Gauge gauge) {
  return kGaugeNames[static_cast<std::size_t>(gauge)];
}

GaugeMerge gaugeMerge(Gauge gauge) {
  return kGaugeMerges[static_cast<std::size_t>(gauge)];
}

const char* timerName(Timer timer) {
  return kTimerNames[static_cast<std::size_t>(timer)];
}

std::size_t histogramBucketIndex(std::uint64_t ns) {
  const std::uint64_t micros = ns >> 10;  // /1024: cheap µs-ish scaling
  if (micros == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(micros));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

double histogramBucketUpperMs(std::size_t bucket) {
  // Bucket 0 tops out at 1 µs; bucket i at 2^i µs (1024 ns units).
  const double upperNs =
      static_cast<double>(1024.0) * std::exp2(static_cast<double>(bucket));
  return upperNs / 1e6;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sumNs += other.sumNs;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramSnapshot::meanMs() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sumNs) /
                          (1e6 * static_cast<double>(count));
}

double HistogramSnapshot::percentileMs(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank over the cumulative bucket counts.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank && seen > 0) return histogramBucketUpperMs(i);
  }
  return histogramBucketUpperMs(kHistogramBuckets - 1);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    switch (kGaugeMerges[i]) {
      case GaugeMerge::Sum:
        gauges[i] += other.gauges[i];
        break;
      case GaugeMerge::Max:
        if (other.gauges[i] > gauges[i]) gauges[i] = other.gauges[i];
        break;
    }
  }
  for (std::size_t i = 0; i < kTimerCount; ++i) {
    timers[i].merge(other.timers[i]);
  }
}

std::string MetricsSnapshot::deterministicJson() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < kFirstFaultCounter; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += kCounterNames[i];
    out += "\":";
    appendUint(out, counters[i]);
  }
  out += "},\"faults\":{";
  for (std::size_t i = kFirstFaultCounter; i < kFirstStoreCounter; ++i) {
    if (i != kFirstFaultCounter) out += ',';
    out += '"';
    out += kCounterNames[i];
    out += "\":";
    appendUint(out, counters[i]);
  }
  out += "},\"store\":{";
  for (std::size_t i = kFirstStoreCounter; i < kFirstKnowledgeCounter; ++i) {
    if (i != kFirstStoreCounter) out += ',';
    out += '"';
    out += kCounterNames[i];
    out += "\":";
    appendUint(out, counters[i]);
  }
  out += "},\"knowledge\":{";
  for (std::size_t i = kFirstKnowledgeCounter; i < kFirstServeCounter; ++i) {
    if (i != kFirstKnowledgeCounter) out += ',';
    out += '"';
    out += kCounterNames[i];
    out += "\":";
    appendUint(out, counters[i]);
  }
  out += "},\"serve\":{";
  for (std::size_t i = kFirstServeCounter; i < kFirstAttributionCounter; ++i) {
    if (i != kFirstServeCounter) out += ',';
    out += '"';
    out += kCounterNames[i];
    out += "\":";
    appendUint(out, counters[i]);
  }
  // The attribution section exists only when the tier actually ran: an
  // AttributionMode::Off run serializes byte-identically to builds that
  // predate the tier (the differential pin depends on this).
  bool anyAttribution = false;
  for (std::size_t i = kFirstAttributionCounter; i < kCounterCount; ++i) {
    anyAttribution = anyAttribution || counters[i] != 0;
  }
  if (anyAttribution) {
    out += "},\"attribution\":{";
    for (std::size_t i = kFirstAttributionCounter; i < kCounterCount; ++i) {
      if (i != kFirstAttributionCounter) out += ',';
      out += '"';
      out += kCounterNames[i];
      out += "\":";
      appendUint(out, counters[i]);
    }
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += kGaugeNames[i];
    out += "\":";
    appendInt(out, gauges[i]);
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::timingJson() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kTimerCount; ++i) {
    if (i != 0) out += ',';
    const HistogramSnapshot& h = timers[i];
    out += '"';
    out += kTimerNames[i];
    out += "\":{\"count\":";
    appendUint(out, h.count);
    out += ",\"total_ms\":";
    appendFixed(out, h.totalMs(), 3);
    out += ",\"mean_ms\":";
    appendFixed(out, h.meanMs(), 6);
    out += ",\"p50_ms\":";
    appendFixed(out, h.percentileMs(50.0), 6);
    out += ",\"p90_ms\":";
    appendFixed(out, h.percentileMs(90.0), 6);
    out += ",\"p99_ms\":";
    appendFixed(out, h.percentileMs(99.0), 6);
    out += '}';
  }
  out += '}';
  return out;
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\n  \"deterministic\": ";
  out += deterministicJson();
  out += ",\n  \"timing\": ";
  out += timingJson();
  out += "\n}\n";
  return out;
}

void MetricsRegistry::add(Counter counter, std::uint64_t delta) {
  if (!enabled()) return;
  counterShards_[thisThreadShard()]
      .values[static_cast<std::size_t>(counter)]
      .fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gaugeSet(Gauge gauge, std::int64_t value) {
  if (!enabled()) return;
  gauges_[static_cast<std::size_t>(gauge)].store(value,
                                                 std::memory_order_relaxed);
}

void MetricsRegistry::gaugeMax(Gauge gauge, std::int64_t value) {
  if (!enabled()) return;
  std::atomic<std::int64_t>& slot = gauges_[static_cast<std::size_t>(gauge)];
  std::int64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::recordTimerNs(Timer timer, std::uint64_t ns) {
  if (!enabled()) return;
  TimerSlot& slot = timers_[static_cast<std::size_t>(timer)];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sumNs.fetch_add(ns, std::memory_order_relaxed);
  slot.buckets[histogramBucketIndex(ns)].fetch_add(1,
                                                   std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const CounterShard& shard : counterShards_) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      snap.counters[i] += shard.values[i].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    snap.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kTimerCount; ++i) {
    const TimerSlot& slot = timers_[i];
    snap.timers[i].count = slot.count.load(std::memory_order_relaxed);
    snap.timers[i].sumNs = slot.sumNs.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      snap.timers[i].buckets[b] =
          slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (CounterShard& shard : counterShards_) {
    for (auto& value : shard.values) {
      value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : gauges_) gauge.store(0, std::memory_order_relaxed);
  for (TimerSlot& slot : timers_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sumNs.store(0, std::memory_order_relaxed);
    for (auto& bucket : slot.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = [] {
    const char* env = std::getenv("COOKIEPICKER_OBS");
    const bool enabled =
        env != nullptr && env[0] != '\0' && env[0] != '0';
    return new MetricsRegistry(enabled);  // leaked: lives for the process
  }();
  return *registry;
}

}  // namespace cookiepicker::obs
