#include "server/behaviors.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dom/select.h"
#include "net/cookie_parse.h"
#include "server/fragments.h"
#include "server/words.h"
#include "util/strings.h"

namespace cookiepicker::server {

namespace {

using dom::Node;

std::string randomHexId(util::Pcg32& rng) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%08x%08x", rng.next(), rng.next());
  return buffer;
}

std::string setCookieValue(const std::string& name, const std::string& value,
                           std::int64_t maxAgeSeconds,
                           const std::string& path) {
  std::string header = name + "=" + value;
  if (maxAgeSeconds > 0) {
    header += "; Max-Age=" + std::to_string(maxAgeSeconds);
  }
  header += "; Path=" + path;
  return header;
}

bool hasClassToken(const Node& node, const std::string& token) {
  const auto classAttr = node.attribute("class");
  if (!classAttr.has_value()) return false;
  for (const std::string& existing : util::splitWhitespace(*classAttr)) {
    if (existing == token) return true;
  }
  return false;
}

std::vector<Node*> findByClass(Node& root, const std::string& token) {
  return dom::select(root, "." + token);
}

void setElementText(Node& element, const std::string& text) {
  element.clearChildren();
  element.appendChild(Node::makeText(text));
}

Node* findMain(Node& body) { return body.findFirst("main"); }

}  // namespace

// --- TrackingCookieBehavior -------------------------------------------------

TrackingCookieBehavior::TrackingCookieBehavior(std::string cookieName,
                                               std::int64_t maxAgeSeconds,
                                               std::string cookiePath,
                                               std::string setOnPathPrefix)
    : cookieName_(std::move(cookieName)),
      maxAgeSeconds_(maxAgeSeconds),
      cookiePath_(std::move(cookiePath)),
      setOnPathPrefix_(std::move(setOnPathPrefix)) {}

void TrackingCookieBehavior::onRequest(const RenderContext& context,
                                       net::HttpResponse& response) {
  if (!setOnPathPrefix_.empty() &&
      context.path.compare(0, setOnPathPrefix_.size(), setOnPathPrefix_) !=
          0) {
    return;
  }
  if (context.hasCookie(cookieName_)) return;
  // Half the trackers (stable per name) use the older Expires=<RFC 1123>
  // attribute instead of Max-Age, as real 2007 servers did — both formats
  // flow through the full parsing pipeline.
  if (util::fnv1a64(cookieName_) % 2 == 0) {
    // Round the current time up to whole seconds so the declared lifetime
    // is never a fraction short of the intended Max-Age equivalent.
    const std::int64_t expiresEpochSeconds =
        (context.clock->nowMs() + 999) / 1000 + maxAgeSeconds_;
    response.headers.add(
        "Set-Cookie",
        cookieName_ + "=" + randomHexId(*context.fetchRng) +
            "; Expires=" + net::formatHttpDate(expiresEpochSeconds) +
            "; Path=" + cookiePath_);
    return;
  }
  response.headers.add(
      "Set-Cookie", setCookieValue(cookieName_, randomHexId(*context.fetchRng),
                                   maxAgeSeconds_, cookiePath_));
}

// --- SessionCartBehavior ----------------------------------------------------

SessionCartBehavior::SessionCartBehavior(std::string cookieName)
    : cookieName_(std::move(cookieName)) {}

void SessionCartBehavior::onRequest(const RenderContext& context,
                                    net::HttpResponse& response) {
  if (context.hasCookie(cookieName_)) return;
  // Session cookie: no Max-Age / Expires.
  response.headers.add("Set-Cookie", cookieName_ + "=0; Path=/");
}

void SessionCartBehavior::render(const RenderContext& context,
                                 dom::Node& body) {
  Node* header = body.findFirst("header");
  if (header == nullptr) return;
  auto cart = Node::makeElement("span");
  cart->setAttribute("class", "cart-status");
  const std::string count =
      context.hasCookie(cookieName_) ? context.cookieValue(cookieName_) : "0";
  cart->appendChild(Node::makeText("Cart items: " + count));
  // The cart widget renders either way, but its content is a function of the
  // cookie read — taint it in both branches.
  cart->addTaintLabels(context.taintFor(cookieName_));
  header->appendChild(std::move(cart));
}

// --- PreferenceCookieBehavior -----------------------------------------------

PreferenceCookieBehavior::PreferenceCookieBehavior(
    std::string cookieName, int intensity, std::int64_t maxAgeSeconds,
    std::string affectedPathPrefix)
    : cookieName_(std::move(cookieName)),
      intensity_(intensity),
      maxAgeSeconds_(maxAgeSeconds),
      affectedPathPrefix_(std::move(affectedPathPrefix)) {}

bool PreferenceCookieBehavior::affectsPath(const std::string& path) const {
  return affectedPathPrefix_.empty() ||
         path.compare(0, affectedPathPrefix_.size(), affectedPathPrefix_) ==
             0;
}

void PreferenceCookieBehavior::onRequest(const RenderContext& context,
                                         net::HttpResponse& response) {
  if (context.hasCookie(cookieName_)) return;
  response.headers.add(
      "Set-Cookie",
      setCookieValue(cookieName_, "default", maxAgeSeconds_, "/"));
}

void PreferenceCookieBehavior::render(const RenderContext& context,
                                      dom::Node& body) {
  // Both branches below are conditioned on reading this cookie, so both
  // taint what they emit — the absence branch's banner is as much a
  // consequence of the read as the personalized content.
  const provenance::LabelSet taint = context.taintFor(cookieName_);
  if (!context.hasCookie(cookieName_) || !affectsPath(context.path)) {
    // Without the preference cookie the generic page carries a hint banner.
    if (Node* main = findMain(body); main != nullptr &&
                                     affectsPath(context.path)) {
      auto banner = Node::makeElement("div");
      banner->setAttribute("class", "pref-hint");
      banner->appendChild(
          Node::makeText("Set your preferences to personalize this page."));
      banner->addTaintLabels(taint);
      main->insertChild(0, std::move(banner));
    }
    return;
  }

  util::Pcg32& stable = *context.stableRng;
  // 1. Personalized greeting replaces the generic site title text.
  if (Node* heading = body.findFirst("h1"); heading != nullptr) {
    setElementText(*heading, "Welcome back — your " + randomWord(stable) +
                                 " edition");
    heading->addTaintLabels(taint);
  }
  // 2. Sidebar with saved links, inserted before <main>.
  Node* page = body.findFirst("div");
  Node* main = findMain(body);
  if (page != nullptr && main != nullptr) {
    std::size_t mainIndex = 0;
    for (std::size_t i = 0; i < page->childCount(); ++i) {
      if (&page->child(i) == main) {
        mainIndex = i;
        break;
      }
    }
    page->insertChild(mainIndex, makeSidebar(stable, "Your saved topics", 5))
        .addTaintLabels(taint);
  }
  if (main == nullptr) return;
  // 3. Recommendation sections at the top of <main>.
  for (int i = 0; i < intensity_; ++i) {
    auto recommended = Node::makeElement("section");
    recommended->setAttribute("class", "recommended");
    recommended->appendChild(
        makeTextElement("h2", "Recommended for you: " + randomTitle(stable)));
    recommended->appendChild(
        makeTextElement("p", randomParagraph(stable, 2)));
    auto list = Node::makeElement("ul");
    for (int j = 0; j < 4; ++j) {
      list->appendChild(makeTextElement("li", randomPhrase(stable, 4)));
    }
    recommended->appendChild(std::move(list));
    recommended->addTaintLabels(taint);
    main->insertChild(0, std::move(recommended));
  }
  // 4. High intensity: personalization dominates — generic sections are
  // replaced outright (drives P4-style similarity scores near 0.2).
  if (intensity_ >= 3) {
    std::vector<std::size_t> genericSections;
    for (std::size_t i = 0; i < main->childCount(); ++i) {
      const Node& child = main->child(i);
      if (child.isElement() && child.name() == "section" &&
          hasClassToken(child, "content")) {
        genericSections.push_back(i);
      }
    }
    // Remove from the back so indices stay valid.
    for (auto it = genericSections.rbegin(); it != genericSections.rend();
         ++it) {
      main->removeChild(*it);
      auto replacement = Node::makeElement("article");
      replacement->setAttribute("class", "personal-feed");
      replacement->appendChild(
          makeTextElement("h2", "From your feed: " + randomTitle(stable)));
      auto timeline = Node::makeElement("dl");
      for (int j = 0; j < 3; ++j) {
        timeline->appendChild(makeTextElement("dt", randomTitle(stable)));
        timeline->appendChild(
            makeTextElement("dd", randomParagraph(stable, 1)));
      }
      replacement->appendChild(std::move(timeline));
      replacement->addTaintLabels(taint);
      main->insertChild(*it, std::move(replacement));
    }
  }
}

// --- SignUpWallBehavior -----------------------------------------------------

SignUpWallBehavior::SignUpWallBehavior(std::string cookieName,
                                       std::int64_t maxAgeSeconds)
    : cookieName_(std::move(cookieName)), maxAgeSeconds_(maxAgeSeconds) {}

void SignUpWallBehavior::onRequest(const RenderContext& context,
                                   net::HttpResponse& response) {
  if (context.hasCookie(cookieName_)) return;
  response.headers.add(
      "Set-Cookie", setCookieValue(cookieName_, randomHexId(*context.fetchRng),
                                   maxAgeSeconds_, "/"));
}

void SignUpWallBehavior::render(const RenderContext& context,
                                dom::Node& body) {
  const provenance::LabelSet taint = context.taintFor(cookieName_);
  if (context.hasCookie(cookieName_)) {
    // Members get a small account toolbar.
    if (Node* header = body.findFirst("header"); header != nullptr) {
      auto toolbar = Node::makeElement("div");
      toolbar->setAttribute("class", "account-bar");
      toolbar->appendChild(Node::makeText("Signed in — account menu"));
      toolbar->addTaintLabels(taint);
      header->appendChild(std::move(toolbar));
    }
    return;
  }
  // No account cookie: the entire content area becomes the sign-up wall.
  // The wall replaces <main> wholesale, so the whole emptied container is
  // a consequence of the cookie read.
  if (Node* main = findMain(body); main != nullptr) {
    main->clearChildren();
    main->appendChild(makeSignUpForm(*context.stableRng));
    main->addTaintLabels(taint);
  }
}

// --- QueryCacheBehavior -----------------------------------------------------

QueryCacheBehavior::QueryCacheBehavior(std::string cookieName,
                                       std::int64_t maxAgeSeconds)
    : cookieName_(std::move(cookieName)), maxAgeSeconds_(maxAgeSeconds) {}

void QueryCacheBehavior::onRequest(const RenderContext& context,
                                   net::HttpResponse& response) {
  // The performance effect (the paper's P2): with the cookie, the server
  // reuses the user's cached query results; without it, results must be
  // recomputed and the response takes far longer.
  if (context.hasCookie(cookieName_)) {
    response.serverProcessingMs += 40.0;
    return;
  }
  response.serverProcessingMs += 1200.0 + 600.0 * context.fetchRng->uniform01();
  response.headers.add(
      "Set-Cookie", setCookieValue(cookieName_, randomHexId(*context.fetchRng),
                                   maxAgeSeconds_, "/"));
}

void QueryCacheBehavior::render(const RenderContext& context,
                                dom::Node& body) {
  Node* main = findMain(body);
  if (main == nullptr) return;
  const provenance::LabelSet taint = context.taintFor(cookieName_);
  if (context.hasCookie(cookieName_)) {
    // The cookie names the user's server-side result directory; the page
    // embeds the cached results instantly.
    auto cached = Node::makeElement("section");
    cached->setAttribute("class", "query-cache");
    cached->appendChild(makeTextElement("h2", "Your recent query results"));
    cached->appendChild(makeResultList(*context.stableRng, 8));
    cached->appendChild(makeTextElement(
        "p", "Served from your result cache for instant reuse."));
    cached->addTaintLabels(taint);
    main->insertChild(0, std::move(cached));
  } else {
    auto placeholder = Node::makeElement("div");
    placeholder->setAttribute("class", "query-pending");
    placeholder->appendChild(
        makeTextElement("h2", "Recomputing your results"));
    placeholder->appendChild(makeTextElement(
        "p", "No result cache found; queries must be executed again."));
    placeholder->addTaintLabels(taint);
    main->insertChild(0, std::move(placeholder));
  }
}

// --- AdRotationNoise --------------------------------------------------------

AdRotationNoise::AdRotationNoise(bool structuralVariation)
    : structuralVariation_(structuralVariation) {}

void AdRotationNoise::render(const RenderContext& context, dom::Node& body) {
  util::Pcg32& rng = *context.fetchRng;
  for (Node* slot : findByClass(body, "adslot")) {
    slot->clearChildren();
    const int shape =
        structuralVariation_ ? static_cast<int>(rng.uniform(0, 2)) : 0;
    auto anchor = Node::makeElement("a");
    anchor->setAttribute(
        "href", "/ad/redirect" + std::to_string(rng.uniform(1, 999)));
    anchor->appendChild(Node::makeText(randomAdCopy(rng)));
    switch (shape) {
      case 0:
        slot->appendChild(std::move(anchor));
        break;
      case 1: {
        slot->appendChild(std::move(anchor));
        auto sponsor = Node::makeElement("span");
        sponsor->setAttribute("class", "sponsor-tag");
        sponsor->appendChild(Node::makeText("Sponsored"));
        slot->appendChild(std::move(sponsor));
        break;
      }
      default: {
        auto wrap = Node::makeElement("div");
        wrap->setAttribute("class", "ad-wrap");
        auto image = Node::makeElement("img");
        image->setAttribute(
            "src", "/assets/ad" + std::to_string(rng.uniform(1, 9)) + ".png");
        wrap->appendChild(std::move(image));
        wrap->appendChild(std::move(anchor));
        slot->appendChild(std::move(wrap));
        break;
      }
    }
  }
}

// --- HeadlineRotationNoise --------------------------------------------------

void HeadlineRotationNoise::render(const RenderContext& context,
                                   dom::Node& body) {
  util::Pcg32& rng = *context.fetchRng;
  for (Node* headline : findByClass(body, "rotating-headline")) {
    setElementText(*headline, randomPhrase(rng, 5));
  }
}

// --- TimestampNoise ---------------------------------------------------------

void TimestampNoise::render(const RenderContext& context, dom::Node& body) {
  const auto totalSeconds = context.clock->nowMs() / 1000;
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%02d:%02d:%02d",
                static_cast<int>((totalSeconds / 3600) % 24),
                static_cast<int>((totalSeconds / 60) % 60),
                static_cast<int>(totalSeconds % 60));
  for (Node* stamp : findByClass(body, "timestamp")) {
    setElementText(*stamp, buffer);
  }
}

// --- LayoutShuffleNoise -----------------------------------------------------

LayoutShuffleNoise::LayoutShuffleNoise(double probability, int variants)
    : probability_(probability), variants_(std::max(1, variants)) {}

void LayoutShuffleNoise::render(const RenderContext& context,
                                dom::Node& body) {
  util::Pcg32& rng = *context.fetchRng;
  if (!rng.chance(probability_)) return;
  Node* main = findMain(body);
  if (main == nullptr || main->childCount() == 0) return;

  // A structurally distinctive promo block lands at the top of <main>...
  const int variant = static_cast<int>(
      rng.uniform(0, static_cast<std::uint32_t>(variants_ - 1)));
  main->insertChild(0, makePromoBlock(rng, variant));

  // ...and the remaining sections rotate (order matters to STM).
  const std::size_t count = main->childCount();
  if (count > 2) {
    const std::size_t shift =
        1 + rng.uniform(0, static_cast<std::uint32_t>(count - 2));
    std::vector<std::unique_ptr<Node>> rotated;
    // Keep the promo (index 0) in place; rotate the rest.
    std::vector<std::unique_ptr<Node>> rest;
    while (main->childCount() > 1) {
      rest.push_back(main->removeChild(1));
    }
    for (std::size_t i = 0; i < rest.size(); ++i) {
      main->appendChild(std::move(rest[(i + shift) % rest.size()]));
    }
  }
  // Occasionally a whole section disappears for this fetch.
  if (main->childCount() > 2 && rng.chance(0.5)) {
    main->removeChild(main->childCount() - 1);
  }
}

}  // namespace cookiepicker::server
