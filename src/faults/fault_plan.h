// Deterministic fault-injection plans.
//
// A FaultPlan is a typed, serializable schedule of network faults: which
// hosts, which request kinds, which request indices, and what goes wrong —
// synthetic 5xx, dropped connections, virtual-clock timeouts, truncated
// bodies, corrupted Set-Cookie headers, slow-drip responses, and flapping
// (fail K requests, recover for R, repeat). The Network evaluates the plan
// per host under that host's dispatch lock, drawing every probabilistic
// gate from the host's forked RNG stream, so a faulty run is exactly as
// reproducible as a healthy one and fleet results stay byte-identical for
// any worker count.
//
// This library deliberately depends only on cp_util: the Network consumes
// it, not the other way around. Request kinds are expressed as the Scope
// enum here; net::Network maps its RequestKind onto it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cookiepicker::faults {

// Which class of request a rule applies to. Any matches all three kinds.
enum class Scope : std::uint8_t {
  Any = 0,
  Container,    // container-page (and redirect) requests
  Subresource,  // object requests (img/script/css/iframe)
  Hidden,       // FORCUM hidden refetches (incl. consistency re-probes)
};
inline constexpr std::size_t kScopeCount = 4;

enum class Action : std::uint8_t {
  ServerError,      // synthetic 5xx with an error body
  ConnectionDrop,   // no response at all (status 0, empty body)
  Timeout,          // status 0 after extraLatencyMs of virtual waiting
  TruncateBody,     // body cut at truncateAtBytes; Content-Length keeps the
                    // original size so consumers can detect the cut
  CorruptSetCookie, // Set-Cookie header values deterministically garbled
  SlowDrip,         // response intact but extraLatencyMs slower
};

const char* scopeName(Scope scope);
const char* actionName(Action action);
std::optional<Scope> parseScope(std::string_view text);
std::optional<Action> parseAction(std::string_view text);

// Sentinel for an unbounded index window ("last=max" in the text format).
inline constexpr std::uint64_t kAllRequests = ~0ull;

// One schedule entry. Rules are evaluated in plan order; the first rule
// whose gates all pass fires, so specific rules should precede wildcards.
struct FaultRule {
  // Exact lowercase host, or "*" for every registered host.
  std::string host = "*";
  Scope scope = Scope::Any;
  // Inclusive window of *logical* request indices, counted per host and per
  // scope. Retries of the same logical request (attempt > 0) share the
  // original attempt's index, so index-scoped plans compose with the
  // browser's retry layer instead of shifting under it.
  std::uint64_t firstIndex = 0;
  std::uint64_t lastIndex = kAllRequests;
  // Flapping: fire for failCount matching requests, pass for recoverCount,
  // repeat. The flap cursor advances per *physical* attempt, so a retry can
  // land in the recovered phase. failCount == 0 disables flapping (the rule
  // fires for every request in its window).
  std::uint32_t failCount = 0;
  std::uint32_t recoverCount = 0;
  // Bernoulli gate, drawn from the host's RNG stream only when every other
  // gate already passed (and only when < 1, so deterministic rules consume
  // no draws).
  double probability = 1.0;

  Action action = Action::ServerError;
  int status = 503;                      // ServerError
  std::uint64_t truncateAtBytes = 256;   // TruncateBody
  double extraLatencyMs = 30000.0;       // Timeout / SlowDrip

  bool operator==(const FaultRule&) const = default;
};

// An ordered rule list with a canonical line-oriented text form:
//
//   # comment
//   rule host=* scope=hidden action=server-error status=503
//        truncate-at=256 extra-ms=30000 first=0 last=max fail=0 recover=0
//        p=0.25                                   (one rule per line)
//
// serialize() emits every key in that fixed order (doubles in shortest
// round-trip form), parse() accepts keys in any order with defaults for the
// omitted ones — so parse(serialize(plan)) == plan for every plan.
struct FaultPlan {
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
  std::string serialize() const;
  // Nullopt on any malformed line: unknown key/action/scope, bad number,
  // duplicate key, probability outside [0,1], or status outside [100,599].
  static std::optional<FaultPlan> parse(std::string_view text);

  // The legacy Network::setFailureProbability knob as sugar: one wildcard
  // rule that 503s any request to a known host with the given probability,
  // reproducing the old single chance(p) draw per dispatch.
  static std::shared_ptr<const FaultPlan> uniformFailure(double probability);

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace cookiepicker::faults
